#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/exporter.hpp"
#include "obs/gauges.hpp"
#include "obs/watchdog.hpp"

namespace remo::obs::test {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) { return ::testing::TempDir() + name; }

GaugeSample make_sample() {
  GaugeSample s;
  s.sample_ns = 1'500'000'000;
  s.events_ingested = 1000;
  s.events_applied = 900;
  s.converged_through = 800;
  s.convergence_lag_events = 200;
  s.staleness_ns = 250'000'000;
  s.in_flight = 42;
  s.queue_depth = 17;
  s.idle_ranks = 1;
  s.idle_ratio = 0.5;
  s.quiescent = false;
  s.safra_mode = true;
  s.safra_generation = 3;
  s.safra_probe_rounds = 12;
  s.safra_probe_active = true;
  s.per_rank.resize(2);
  s.per_rank[0] = RankGaugeSample{.queue_depth = 12,
                                  .ring_occupancy = 9,
                                  .overflow_depth = 3,
                                  .events_ingested = 600,
                                  .events_applied = 500,
                                  .converged_through = 480,
                                  .staleness_ns = 100'000'000,
                                  .trace_emitted = 7,
                                  .idle = false};
  s.per_rank[1] = RankGaugeSample{.queue_depth = 5,
                                  .events_ingested = 400,
                                  .events_applied = 400,
                                  .converged_through = 400,
                                  .trace_emitted = 3,
                                  .idle = true};
  return s;
}

TEST(GaugeSample, JsonRecordHasSchemaAndAllGauges) {
  const Json j = make_sample().to_json();
  EXPECT_EQ(j.find("schema")->as_string(), "remo-gauges-1");
  EXPECT_EQ(j.find("events_ingested")->as_uint(), 1000u);
  EXPECT_EQ(j.find("events_applied")->as_uint(), 900u);
  EXPECT_EQ(j.find("converged_through")->as_uint(), 800u);
  EXPECT_EQ(j.find("convergence_lag_events")->as_uint(), 200u);
  EXPECT_EQ(j.find("staleness_ns")->as_uint(), 250'000'000u);
  EXPECT_EQ(j.find("in_flight")->as_int(), 42);
  EXPECT_EQ(j.find("queue_depth")->as_uint(), 17u);
  EXPECT_FALSE(j.find("quiescent")->as_bool());
  const Json* det = j.find("termination");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->find("mode")->as_string(), "safra");
  EXPECT_EQ(det->find("probe_rounds")->as_uint(), 12u);
  const Json* ranks = j.find("per_rank");
  ASSERT_NE(ranks, nullptr);
  ASSERT_EQ(ranks->size(), 2u);
  EXPECT_EQ(ranks->items()[0].find("queue_depth")->as_uint(), 12u);
  EXPECT_EQ(ranks->items()[0].find("ring_occupancy")->as_uint(), 9u);
  EXPECT_EQ(ranks->items()[0].find("overflow_depth")->as_uint(), 3u);
  EXPECT_TRUE(ranks->items()[1].find("idle")->as_bool());

  // Round-trips through the parser and honours include_per_rank = false.
  std::string err;
  Json::parse(j.dump(), &err);
  EXPECT_TRUE(err.empty()) << err;
  EXPECT_EQ(make_sample().to_json(false).find("per_rank"), nullptr);
}

TEST(GaugeSample, CountingModeOmitsSafraDetail) {
  GaugeSample s = make_sample();
  s.safra_mode = false;
  const Json j = s.to_json();
  const Json* det = j.find("termination");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->find("mode")->as_string(), "counting");
  EXPECT_EQ(det->find("probe_rounds"), nullptr);
}

TEST(GaugeSample, PrometheusExpositionIsWellFormed) {
  const std::string text = make_sample().to_prometheus();
  // Every metric line is "name[{labels}] value"; HELP/TYPE precede values.
  EXPECT_NE(text.find("# HELP remo_convergence_lag_events"), std::string::npos);
  EXPECT_NE(text.find("# TYPE remo_events_ingested_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("remo_events_ingested_total 1000\n"), std::string::npos);
  EXPECT_NE(text.find("remo_convergence_lag_events 200\n"), std::string::npos);
  EXPECT_NE(text.find("remo_staleness_seconds 0.250000000\n"), std::string::npos);
  EXPECT_NE(text.find("remo_in_flight_messages 42\n"), std::string::npos);
  EXPECT_NE(text.find("remo_queue_depth{rank=\"0\"} 12\n"), std::string::npos);
  EXPECT_NE(text.find("remo_queue_depth{rank=\"1\"} 5\n"), std::string::npos);
  EXPECT_NE(text.find("remo_ring_occupancy{rank=\"0\"} 9\n"), std::string::npos);
  EXPECT_NE(text.find("remo_overflow_depth{rank=\"0\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("remo_rank_idle{rank=\"1\"} 1\n"), std::string::npos);
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(PromSanitize, MapsIllegalCharsOntoExpositionCharset) {
  EXPECT_EQ(prom_sanitize_name("remo_ok_name:total"), "remo_ok_name:total");
  EXPECT_EQ(prom_sanitize_name("remo-queue.depth"), "remo_queue_depth");
  EXPECT_EQ(prom_sanitize_name("9lives"), "_9lives");
  EXPECT_EQ(prom_sanitize_name(""), "_");
  EXPECT_EQ(prom_sanitize_name("a b/c"), "a_b_c");
}

TEST(PromWriter, SanitizesNamesAndEmitsHeadersOncePerMetric) {
  PromWriter w;
  w.header("remo-flaky.metric", "help text", "gauge");
  w.value("remo-flaky.metric", std::uint64_t{1});
  w.header("remo-flaky.metric", "help text", "gauge");  // literal duplicate
  w.header("remo_flaky_metric", "other", "counter");    // post-sanitize duplicate
  w.labelled("remo-flaky.metric", "rank", "0", 2);
  const std::string& text = w.str();

  const auto count = [&](const std::string& needle) {
    std::size_t n = 0;
    for (std::size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count("# HELP remo_flaky_metric"), 1u);
  EXPECT_EQ(count("# TYPE remo_flaky_metric"), 1u);
  EXPECT_NE(text.find("remo_flaky_metric 1\n"), std::string::npos);
  EXPECT_NE(text.find("remo_flaky_metric{rank=\"0\"} 2\n"), std::string::npos);
  // The raw (illegal) spelling never reaches the exposition.
  EXPECT_EQ(text.find("remo-flaky.metric"), std::string::npos);
}

TEST(GaugeSample, WatchViewRendersHeaderAndOneLinePerRank) {
  const std::string view = make_sample().watch_view();
  std::size_t lines = 0;
  for (char c : view) lines += c == '\n';
  EXPECT_EQ(lines, 3u);  // header + 2 ranks
  EXPECT_NE(view.find("lag 200 ev"), std::string::npos);
  EXPECT_NE(view.find("rank 0"), std::string::npos);
  EXPECT_NE(view.find("rank 1"), std::string::npos);
  EXPECT_NE(view.find("idle"), std::string::npos);
  EXPECT_NE(view.find("busy"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsExporter against scripted samplers
// ---------------------------------------------------------------------------

TEST(MetricsExporter, JsonlEmitsOneParsableRecordPerSample) {
  const std::string path = temp_path("remo_gauges_test.jsonl");
  std::atomic<std::uint64_t> calls{0};
  {
    MetricsExporter::Config cfg;
    cfg.period = std::chrono::milliseconds(2);
    cfg.path = path;
    MetricsExporter exporter(
        [&] {
          GaugeSample s = make_sample();
          s.events_ingested = 1000 + calls.fetch_add(1, std::memory_order_relaxed);
          return s;
        },
        cfg);
    while (exporter.samples() < 3)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_GE(exporter.last_sample().events_ingested, 1000u);
  }  // destructor stops + flushes the final sample

  std::istringstream in(slurp(path));
  std::string line;
  std::uint64_t records = 0, prev_ingested = 0;
  while (std::getline(in, line)) {
    std::string err;
    const Json j = Json::parse(line, &err);
    ASSERT_TRUE(err.empty()) << "line " << records << ": " << err;
    EXPECT_EQ(j.find("schema")->as_string(), "remo-gauges-1");
    const std::uint64_t ingested = j.find("events_ingested")->as_uint();
    EXPECT_GE(ingested, prev_ingested);  // scripted monotone counter
    prev_ingested = ingested;
    ++records;
  }
  EXPECT_GE(records, 4u);  // >= 3 periodic + 1 final
  std::remove(path.c_str());
}

TEST(MetricsExporter, PrometheusRewritesFileAtomically) {
  const std::string path = temp_path("remo_gauges_test.prom");
  {
    MetricsExporter::Config cfg;
    cfg.period = std::chrono::milliseconds(2);
    cfg.format = MetricsExporter::Format::kPrometheus;
    cfg.path = path;
    MetricsExporter exporter([] { return make_sample(); }, cfg);
    while (exporter.samples() < 2)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string text = slurp(path);
  EXPECT_NE(text.find("remo_events_ingested_total 1000\n"), std::string::npos);
  // The rename target replaced the tmp file; no half-written residue.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(MetricsExporter, StopTakesExactlyOneFinalSample) {
  std::atomic<std::uint64_t> calls{0};
  MetricsExporter::Config cfg;
  cfg.period = std::chrono::hours(1);  // never ticks on its own
  cfg.path = temp_path("remo_gauges_final.jsonl");
  MetricsExporter exporter(
      [&] {
        calls.fetch_add(1, std::memory_order_relaxed);
        return make_sample();
      },
      cfg);
  exporter.stop();
  exporter.stop();  // idempotent
  EXPECT_EQ(calls.load(), 1u);
  EXPECT_EQ(exporter.samples(), 1u);
  std::remove(cfg.path.c_str());
}

// ---------------------------------------------------------------------------
// StallWatchdog against scripted samplers
// ---------------------------------------------------------------------------

struct ScriptedRank {
  std::uint64_t queue = 0;
  std::uint64_t applied = 0;
};

/// Sampler backed by a mutable script: each call renders the current rank
/// states into a GaugeSample.
class StallScript {
 public:
  explicit StallScript(std::size_t ranks) : ranks_(ranks) {}

  void set(std::size_t r, std::uint64_t queue, std::uint64_t applied) {
    std::lock_guard lock(mutex_);
    ranks_[r] = ScriptedRank{queue, applied};
  }

  GaugeSample operator()() {
    std::lock_guard lock(mutex_);
    GaugeSample s;
    s.per_rank.resize(ranks_.size());
    for (std::size_t r = 0; r < ranks_.size(); ++r) {
      s.per_rank[r].queue_depth = ranks_[r].queue;
      s.per_rank[r].events_applied = ranks_[r].applied;
      s.events_applied += ranks_[r].applied;
      s.queue_depth += ranks_[r].queue;
    }
    return s;
  }

 private:
  std::mutex mutex_;
  std::vector<ScriptedRank> ranks_;
};

struct ReportLog {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<StallWatchdog::Report> reports;

  void push(const StallWatchdog::Report& r) {
    std::lock_guard lock(mutex);
    reports.push_back(r);
    cv.notify_all();
  }

  StallWatchdog::Report wait_for_report(std::size_t index) {
    std::unique_lock lock(mutex);
    EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return reports.size() > index; }));
    return reports.at(index);
  }
};

TEST(StallWatchdog, FlagsRankAfterExactlyStallPeriodsAndRecovers) {
  auto script = std::make_shared<StallScript>(3);
  script->set(0, 0, 100);  // idle, empty queue: never flagged
  script->set(1, 5, 0);    // backlog, applied frozen: the stalled rank
  script->set(2, 9, 0);    // backlog but advancing (below): never flagged
  std::atomic<std::uint64_t> advancing{0};

  ReportLog log;
  StallWatchdog::Config cfg;
  cfg.period = std::chrono::milliseconds(2);
  cfg.stall_periods = 3;
  cfg.extra_dump = [](std::uint32_t r) {
    return std::string("extra-dump-for-rank-") + std::to_string(r) + "\n";
  };
  StallWatchdog dog(
      [&] {
        // Rank 2 makes progress on every sample; rank 1 never does.
        script->set(2, 9, advancing.fetch_add(1, std::memory_order_relaxed) + 1);
        return (*script)();
      },
      cfg, [&](const StallWatchdog::Report& r) { log.push(r); });

  const StallWatchdog::Report first = log.wait_for_report(0);
  EXPECT_EQ(first.rank, 1u);
  EXPECT_EQ(first.periods, 3u);  // flagged on exactly the 3rd no-progress sample
  EXPECT_FALSE(first.recovered);
  EXPECT_NE(first.dump.find("rank 1 made no progress for 3"), std::string::npos);
  EXPECT_NE(first.dump.find("extra-dump-for-rank-1"), std::string::npos);
  EXPECT_EQ(dog.stalls_detected(), 1u);
  EXPECT_TRUE(dog.rank_flagged(1));
  EXPECT_FALSE(dog.rank_flagged(0));
  EXPECT_FALSE(dog.rank_flagged(2));

  // Unwedge rank 1: the next sample shows progress -> recovery report.
  script->set(1, 2, 50);
  const StallWatchdog::Report second = log.wait_for_report(1);
  EXPECT_EQ(second.rank, 1u);
  EXPECT_TRUE(second.recovered);
  EXPECT_FALSE(dog.rank_flagged(1));
  EXPECT_EQ(dog.stalls_detected(), 1u);  // recoveries are not stalls
  dog.stop();
}

TEST(StallWatchdog, EmptyQueueNeverFlagsEvenWithoutProgress) {
  auto script = std::make_shared<StallScript>(1);
  script->set(0, 0, 0);  // nothing to do != stalled
  StallWatchdog::Config cfg;
  cfg.period = std::chrono::milliseconds(1);
  cfg.stall_periods = 2;
  std::atomic<std::uint64_t> samples{0};
  StallWatchdog dog(
      [&] {
        samples.fetch_add(1, std::memory_order_relaxed);
        return (*script)();
      },
      cfg, [](const StallWatchdog::Report&) { FAIL() << "spurious stall"; });
  while (samples.load(std::memory_order_relaxed) < 10)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(dog.stalls_detected(), 0u);
  dog.stop();
}

TEST(StallWatchdog, HoldsWhileSafraTokenInFlight) {
  // While a Safra probe circulates, a rank may legitimately sit on backlog
  // with frozen counters (the token needs whole ring circuits). The
  // watchdog must hold its no-progress counters — no accumulation, no
  // reset — and resume the count once the probe ends.
  auto script = std::make_shared<StallScript>(1);
  script->set(0, 7, 0);  // backlog, frozen applied: stall candidate
  std::atomic<std::uint64_t> samples{0};
  std::atomic<bool> probing{true};
  ReportLog log;
  StallWatchdog::Config cfg;
  cfg.period = std::chrono::milliseconds(1);
  cfg.stall_periods = 3;
  StallWatchdog dog(
      [&] {
        samples.fetch_add(1, std::memory_order_relaxed);
        GaugeSample s = (*script)();
        s.safra_mode = true;
        s.safra_probe_active = probing.load(std::memory_order_relaxed);
        return s;
      },
      cfg, [&](const StallWatchdog::Report& r) { log.push(r); });

  // Many probing samples, all showing backlog + no progress: no report.
  while (samples.load(std::memory_order_relaxed) < 20)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(dog.stalls_detected(), 0u);
  EXPECT_FALSE(dog.rank_flagged(0));

  // Probe ends without the rank progressing: accumulation starts from zero
  // and flags after exactly stall_periods further samples.
  probing.store(false, std::memory_order_relaxed);
  const StallWatchdog::Report rep = log.wait_for_report(0);
  EXPECT_EQ(rep.rank, 0u);
  EXPECT_EQ(rep.periods, 3u);
  EXPECT_FALSE(rep.recovered);
  dog.stop();
}

TEST(StallWatchdog, TerminatedProbeDoesNotSuppressDetection) {
  // probe_active can stay latched in a terminated sample; termination means
  // the detector finished, so suppression must not apply.
  auto script = std::make_shared<StallScript>(1);
  script->set(0, 4, 0);
  ReportLog log;
  StallWatchdog::Config cfg;
  cfg.period = std::chrono::milliseconds(1);
  cfg.stall_periods = 2;
  StallWatchdog dog(
      [&] {
        GaugeSample s = (*script)();
        s.safra_mode = true;
        s.safra_probe_active = true;
        s.safra_terminated = true;
        return s;
      },
      cfg, [&](const StallWatchdog::Report& r) { log.push(r); });
  const StallWatchdog::Report rep = log.wait_for_report(0);
  EXPECT_EQ(rep.rank, 0u);
  EXPECT_EQ(rep.periods, 2u);
  dog.stop();
}

TEST(StallWatchdog, FormatDumpShowsWatermarksAndFlaggedRank) {
  GaugeSample s = make_sample();
  const std::string dump = StallWatchdog::format_dump(s, 0, 4);
  EXPECT_NE(dump.find("rank 0 made no progress for 4"), std::string::npos);
  EXPECT_NE(dump.find("ingested 1,000"), std::string::npos);
  EXPECT_NE(dump.find("lag 200 events"), std::string::npos);
  EXPECT_NE(dump.find("<<<"), std::string::npos);
  EXPECT_NE(dump.find("safra generation 3"), std::string::npos);
}

}  // namespace
}  // namespace remo::obs::test
