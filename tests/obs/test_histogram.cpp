#include <gtest/gtest.h>

#include <cstdint>

#include "obs/histogram.hpp"

namespace remo::obs::test {
namespace {

using hist_detail::bucket_lower;
using hist_detail::bucket_of;
using hist_detail::bucket_upper;
using hist_detail::kBucketCount;
using hist_detail::kSubCount;

TEST(HistogramBuckets, SmallValuesAreExact) {
  // Values below 16 each get a dedicated unit bucket.
  for (std::uint64_t v = 0; v < kSubCount; ++v) {
    EXPECT_EQ(bucket_of(v), v);
    EXPECT_EQ(bucket_lower(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(bucket_upper(static_cast<std::uint32_t>(v)), v + 1);
  }
}

TEST(HistogramBuckets, PowerOfTwoBoundaries) {
  // Each power of two starts a fresh major group of 16 sub-buckets.
  EXPECT_EQ(bucket_of(16), 16u);
  EXPECT_EQ(bucket_of(31), 31u);  // group 1 has unit-wide sub-buckets
  EXPECT_EQ(bucket_of(32), 32u);
  EXPECT_EQ(bucket_of(33), 32u);  // group 2: sub-buckets 2 wide
  EXPECT_EQ(bucket_of(34), 33u);
  EXPECT_EQ(bucket_lower(32), 32u);
  EXPECT_EQ(bucket_upper(32), 34u);
}

TEST(HistogramBuckets, RoundTripContainsValue) {
  // lower <= v < upper for a spread of magnitudes, including extremes.
  const std::uint64_t probes[] = {0,    1,    15,   16,     17,       1000,
                                  4096, 4097, 1u << 20,     123456789,
                                  std::uint64_t{1} << 40,   (std::uint64_t{1} << 40) + 12345,
                                  ~std::uint64_t{0} - 1};
  for (const std::uint64_t v : probes) {
    const std::uint32_t b = bucket_of(v);
    ASSERT_LT(b, kBucketCount) << v;
    EXPECT_LE(bucket_lower(b), v) << v;
    EXPECT_GT(bucket_upper(b), v) << v;
  }
  // The maximum value saturates the final bucket (upper bound is inclusive
  // there by construction).
  EXPECT_EQ(bucket_of(~std::uint64_t{0}), kBucketCount - 1);
}

TEST(HistogramBuckets, RelativeErrorBounded) {
  // Bucket width / lower bound <= 1/16 for all non-tiny values.
  for (std::uint32_t b = kSubCount; b + 1 < kBucketCount; ++b) {
    const std::uint64_t lo = bucket_lower(b);
    const std::uint64_t width = bucket_upper(b) - lo;
    EXPECT_LE(static_cast<double>(width) / static_cast<double>(lo), 1.0 / 16.0)
        << "bucket " << b;
  }
}

TEST(HistogramBuckets, IndicesAreMonotone) {
  std::uint32_t prev = bucket_of(0);
  for (std::uint64_t v = 1; v < 100000; ++v) {
    const std::uint32_t b = bucket_of(v);
    EXPECT_GE(b, prev) << v;
    prev = b;
  }
}

TEST(HistogramPercentiles, ExactOnUnitBuckets) {
  // 1..10 once each: every value sits in its own exact bucket, so every
  // percentile is the exact order statistic.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 10; ++v) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.sum, 55u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  EXPECT_EQ(s.percentile(10), 1u);
  EXPECT_EQ(s.percentile(50), 5u);
  EXPECT_EQ(s.percentile(90), 9u);
  EXPECT_EQ(s.percentile(100), 10u);
  EXPECT_EQ(s.p50(), 5u);
  EXPECT_EQ(s.p90(), 9u);
}

TEST(HistogramPercentiles, SkewedDistribution) {
  // 99 fast samples + 1 slow one: p99 stays fast, p99.9+ sees the outlier.
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.record(5);
  h.record(1'000'000);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.p50(), 5u);
  EXPECT_EQ(s.p99(), 5u);
  const std::uint64_t tail = s.p999();
  EXPECT_GE(tail, 1'000'000u * 15 / 16);
  EXPECT_LE(tail, 1'000'000u);  // representative clamps to observed max
}

TEST(HistogramPercentiles, QuantisationWithinBound) {
  LatencyHistogram h;
  const std::uint64_t v = 123456;
  h.record(v);
  const HistogramSnapshot s = h.snapshot();
  const std::uint64_t got = s.p50();
  EXPECT_GE(got, v - v / 16);
  EXPECT_LE(got, v);  // clamped to max, never above the true sample
}

TEST(HistogramPercentiles, EmptyHistogramIsZero) {
  const HistogramSnapshot s = LatencyHistogram{}.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.p50(), 0u);
  EXPECT_EQ(s.percentile(100), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(HistogramMerge, AcrossRanks) {
  // Two "ranks" with disjoint value ranges; the merged view must interleave
  // them as one population.
  LatencyHistogram fast, slow;
  for (std::uint64_t v = 1; v <= 5; ++v) fast.record(v);   // 1..5
  for (std::uint64_t v = 11; v <= 15; ++v) slow.record(v); // 11..15
  HistogramSnapshot merged = fast.snapshot();
  merged.merge(slow.snapshot());
  EXPECT_EQ(merged.count, 10u);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 15u);
  EXPECT_EQ(merged.percentile(50), 5u);   // 5th of {1..5,11..15}
  EXPECT_EQ(merged.percentile(60), 11u);  // 6th crosses into the slow rank
  EXPECT_EQ(merged.percentile(100), 15u);
}

TEST(HistogramMerge, IntoEmptyAndFromEmpty) {
  LatencyHistogram h;
  h.record(7);
  HistogramSnapshot a;  // empty, no counts allocated
  a.merge(h.snapshot());
  EXPECT_EQ(a.count, 1u);
  EXPECT_EQ(a.p50(), 7u);
  a.merge(HistogramSnapshot{});  // merging an empty snapshot is a no-op
  EXPECT_EQ(a.count, 1u);
  EXPECT_EQ(a.min, 7u);
}

TEST(HistogramMerge, SumsBucketCounts) {
  LatencyHistogram x, y;
  x.record(100);
  x.record(100);
  y.record(100);
  HistogramSnapshot m = x.snapshot();
  m.merge(y.snapshot());
  EXPECT_EQ(m.counts[bucket_of(100)], 3u);
  EXPECT_EQ(m.count, 3u);
  EXPECT_EQ(m.sum, 300u);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.record(3);
  h.record(999);
  ASSERT_EQ(h.count(), 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
}

}  // namespace
}  // namespace remo::obs::test
