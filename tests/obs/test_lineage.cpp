#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/lineage.hpp"

namespace remo::obs::test {
namespace {

TEST(CauseId, PacksOriginAndSequence) {
  const CauseId c = make_cause(3, 41);
  EXPECT_EQ(cause_origin(c), 3u);
  EXPECT_EQ(cause_seq(c), 41u);
  const CauseId m = make_cause(kMainOrigin, kCauseSeqMask);
  EXPECT_EQ(cause_origin(m), kMainOrigin);
  EXPECT_EQ(cause_seq(m), kCauseSeqMask);
  // Sequence truncates into its 24 bits without bleeding into the origin.
  EXPECT_EQ(cause_origin(make_cause(7, kCauseSeqMask + 5)), 7u);
  EXPECT_EQ(cause_seq(make_cause(7, kCauseSeqMask + 5)), 4u);
}

TEST(LineageTable, RecordsSpawnsAppliesAndWitnesses) {
  LineageTable t(64);
  const CauseId c = make_cause(0, 1);
  t.record_origin(c, 100);
  t.record_spawn(c, 1, /*remote=*/false);
  t.record_spawn(c, 1, /*remote=*/true);
  t.record_spawn(c, 2, /*remote=*/true);
  t.record_apply(c, 0, /*vertex=*/10, 150);
  t.record_apply(c, 1, /*vertex=*/11, 200);
  t.record_apply(c, 1, /*vertex=*/12, 250);  // later: replaces depth-1 witness

  const auto cells = t.snapshot(/*rank=*/0);
  ASSERT_EQ(cells.size(), 1u);
  const LineageCellSnapshot& s = cells[0];
  EXPECT_EQ(s.cause, c);
  EXPECT_EQ(s.rank, 0u);
  EXPECT_EQ(s.spawned, 3u);
  EXPECT_EQ(s.remote_spawned, 2u);
  EXPECT_EQ(s.applied, 3u);
  EXPECT_EQ(s.max_depth, 2u);
  EXPECT_EQ(s.first_ns, 100u);
  EXPECT_EQ(s.last_ns, 250u);
  EXPECT_EQ(s.witness[0].vertex, 10u);
  EXPECT_EQ(s.witness[1].vertex, 12u);  // latest apply wins the depth slot
  EXPECT_EQ(s.witness[1].ns, 250u);
  EXPECT_EQ(s.witness[2].vertex, kNoWitness);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(LineageTable, DeepHopsCountTowardDepthWithoutWitnessSlots) {
  LineageTable t(8);
  const CauseId c = make_cause(1, 1);
  t.record_apply(c, kWitnessDepths + 3, 99, 500);
  const auto cells = t.snapshot(1);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].max_depth, kWitnessDepths + 3);
  for (std::uint32_t d = 0; d < kWitnessDepths; ++d)
    EXPECT_EQ(cells[0].witness[d].vertex, kNoWitness);
  // No origin record: the first apply stands in for first_ns.
  EXPECT_EQ(cells[0].first_ns, 500u);
}

TEST(LineageTable, OverflowCountsDropsInsteadOfEvicting) {
  LineageTable t(2);  // rounds to capacity 2, probe bound = 2
  EXPECT_EQ(t.capacity(), 2u);
  std::uint64_t tracked = 0;
  for (std::uint32_t seq = 1; seq <= 64; ++seq)
    t.record_spawn(make_cause(0, seq), 0, false);
  for (const auto& cell : t.snapshot(0)) tracked += cell.spawned;
  EXPECT_EQ(tracked + t.dropped(), 64u);
  EXPECT_GT(t.dropped(), 0u);
  EXPECT_LE(t.snapshot(0).size(), 2u);
}

/// Hand-rolled two-rank cascade: cause ingested on rank 0 at t=100, root
/// applied there, one remote child applied on rank 1.
std::vector<LineageCellSnapshot> two_rank_cells(CauseId c) {
  LineageTable r0(16), r1(16);
  r0.record_origin(c, 100);
  r0.record_apply(c, 0, /*vertex=*/5, 150);
  r0.record_spawn(c, 1, /*remote=*/true);
  r1.record_apply(c, 1, /*vertex=*/6, 300);
  auto cells = r0.snapshot(0);
  for (const auto& s : r1.snapshot(1)) cells.push_back(s);
  return cells;
}

TEST(MergeLineage, FoldsPerRankCellsIntoGlobalRecords) {
  const CauseId c = make_cause(0, 7);
  const LineageSnapshot snap = merge_lineage(two_rank_cells(c), 2, /*dropped=*/0);
  EXPECT_EQ(snap.ranks, 2u);
  ASSERT_EQ(snap.records.size(), 1u);
  const LineageRecord& r = snap.records[0];
  EXPECT_EQ(r.cause, c);
  EXPECT_EQ(r.spawned, 1u);
  EXPECT_EQ(r.remote_spawned, 1u);
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.max_depth, 1u);
  EXPECT_EQ(r.ranks_touched, 2u);
  EXPECT_EQ(r.first_ns, 100u);  // the origin's ingest instant, not first apply
  EXPECT_EQ(r.last_ns, 300u);
  EXPECT_EQ(r.span_ns(), 200u);
  ASSERT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.path[0].depth, 0u);
  EXPECT_EQ(r.path[0].vertex, 5u);
  EXPECT_EQ(r.path[0].rank, 0u);
  EXPECT_EQ(r.path[1].depth, 1u);
  EXPECT_EQ(r.path[1].vertex, 6u);
  EXPECT_EQ(r.path[1].rank, 1u);
}

TEST(MergeLineage, SortsRecordsBySpanDescending) {
  LineageTable t(16);
  const CauseId slow = make_cause(0, 1), fast = make_cause(0, 2);
  t.record_origin(slow, 100);
  t.record_apply(slow, 0, 1, 900);
  t.record_origin(fast, 200);
  t.record_apply(fast, 0, 2, 300);
  const LineageSnapshot snap = merge_lineage(t.snapshot(0), 1, 0);
  ASSERT_EQ(snap.records.size(), 2u);
  EXPECT_EQ(snap.records[0].cause, slow);
  EXPECT_EQ(snap.records[1].cause, fast);
}

TEST(LineageSummary, AggregatesAmplificationPercentiles) {
  LineageTable t(64);
  // Nine causes applying once, one cause applying 100 times at depth 5.
  for (std::uint32_t seq = 1; seq <= 9; ++seq) {
    const CauseId c = make_cause(0, seq);
    t.record_spawn(c, 0, false);
    t.record_apply(c, 0, seq, 10 * seq);
  }
  const CauseId heavy = make_cause(0, 10);
  for (int i = 0; i < 100; ++i) {
    t.record_spawn(heavy, 5, /*remote=*/i % 2 == 0);
    t.record_apply(heavy, 5, 99, 1000 + static_cast<std::uint64_t>(i));
  }
  const LineageSnapshot snap = merge_lineage(t.snapshot(0), 1, /*dropped=*/3);
  const LineageSummary s = snap.summary();
  EXPECT_EQ(s.sampled, 10u);
  EXPECT_EQ(s.dropped, 3u);
  EXPECT_EQ(s.spawned, 109u);
  EXPECT_EQ(s.remote_spawned, 50u);
  EXPECT_EQ(s.applied, 109u);
  EXPECT_EQ(s.visitors_p50, 1u);
  EXPECT_EQ(s.visitors_p99, 100u);  // the heavy tail survives the percentile
  EXPECT_EQ(s.depth_p50, 0u);
  EXPECT_EQ(s.depth_p99, 5u);
  EXPECT_NEAR(s.cross_rank_ratio, 50.0 / 109.0, 1e-9);
}

TEST(LineageSnapshot, JsonRoundTripPreservesRecords) {
  const CauseId c = make_cause(kMainOrigin, 9);
  const LineageSnapshot snap = merge_lineage(two_rank_cells(c), 2, /*dropped=*/1);
  const Json doc = snap.to_json();
  EXPECT_EQ(doc.find("schema")->as_string(), "remo-lineage-1");

  // Through a dump/parse cycle, as trace-analyze consumes it.
  std::string err;
  const Json parsed = Json::parse(doc.dump(), &err);
  ASSERT_TRUE(err.empty()) << err;
  LineageSnapshot back;
  std::string perr;
  ASSERT_TRUE(LineageSnapshot::from_json(parsed, back, &perr)) << perr;
  EXPECT_EQ(back.ranks, 2u);
  EXPECT_EQ(back.dropped, 1u);
  ASSERT_EQ(back.records.size(), 1u);
  const LineageRecord& r = back.records[0];
  EXPECT_EQ(r.cause, c);
  EXPECT_EQ(r.spawned, 1u);
  EXPECT_EQ(r.applied, 2u);
  EXPECT_EQ(r.ranks_touched, 2u);
  EXPECT_EQ(r.first_ns, 100u);
  EXPECT_EQ(r.last_ns, 300u);
  ASSERT_EQ(r.path.size(), 2u);
  EXPECT_EQ(r.path[1].vertex, 6u);

  // Summary is recomputed identically from the parsed records.
  EXPECT_EQ(back.summary().applied, snap.summary().applied);
  EXPECT_EQ(back.summary().visitors_p50, snap.summary().visitors_p50);
}

TEST(LineageSnapshot, FromJsonRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = "remo-stats-1";
  LineageSnapshot out;
  std::string err;
  EXPECT_FALSE(LineageSnapshot::from_json(doc, out, &err));
  EXPECT_FALSE(err.empty());
}

TEST(LineageSnapshot, ToJsonHonoursMaxCausesCap) {
  LineageTable t(64);
  for (std::uint32_t seq = 1; seq <= 8; ++seq)
    t.record_apply(make_cause(0, seq), 0, seq, seq * 10);
  const LineageSnapshot snap = merge_lineage(t.snapshot(0), 1, 0);
  EXPECT_EQ(snap.to_json().find("causes")->size(), 8u);
  EXPECT_EQ(snap.to_json(3).find("causes")->size(), 3u);
}

TEST(AnalyzeLineage, ReportsSummaryAndCriticalPath) {
  const CauseId c = make_cause(0, 7);
  const LineageSnapshot snap = merge_lineage(two_rank_cells(c), 2, 0);
  const std::string report = analyze_lineage(snap, 10);
  EXPECT_NE(report.find("lineage: 1 causes sampled"), std::string::npos);
  EXPECT_NE(report.find("amplification:"), std::string::npos);
  EXPECT_NE(report.find("cross-rank hop ratio 1.000"), std::string::npos);
  EXPECT_NE(report.find("r0#7"), std::string::npos);
  // Witness chain with per-step rank attribution and relative times.
  EXPECT_NE(report.find("d0 v5@r0 +50 ns"), std::string::npos);
  EXPECT_NE(report.find("d1 v6@r1 +200 ns"), std::string::npos);
}

TEST(AnalyzeLineage, EmptySnapshotIsJustTheHeader) {
  const std::string report = analyze_lineage(LineageSnapshot{}, 10);
  EXPECT_NE(report.find("0 causes sampled"), std::string::npos);
  EXPECT_EQ(report.find("amplification"), std::string::npos);
}

TEST(CausesBelowDescendants, FlagsCausesWithoutSpawns) {
  LineageTable t(16);
  const CauseId live = make_cause(0, 1), dead = make_cause(0, 2);
  t.record_spawn(live, 0, false);
  t.record_origin(dead, 50);  // sampled but never propagated anywhere
  const LineageSnapshot snap = merge_lineage(t.snapshot(0), 1, 0);
  const auto below = causes_below_descendants(snap, 1);
  ASSERT_EQ(below.size(), 1u);
  EXPECT_EQ(below[0], dead);
  EXPECT_TRUE(causes_below_descendants(snap, 0).empty());
}

}  // namespace
}  // namespace remo::obs::test
