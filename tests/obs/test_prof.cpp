// Hardware-counter profiling layer (obs/prof.hpp): scripted-backend
// attribution math, sampling stride, failure handling, JSON round trip,
// Prometheus exposition, rusage floor, and the stack sampler.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "obs/gauges.hpp"
#include "obs/prof.hpp"
#include "obs/span.hpp"

namespace remo::obs::test {
namespace {

CounterSet make_set(std::uint64_t cycles, std::uint64_t instructions,
                    std::uint64_t llc_loads = 0, std::uint64_t llc_misses = 0,
                    std::uint64_t branch_misses = 0,
                    std::uint64_t stalled = 0, std::uint64_t task_ns = 0) {
  CounterSet c;
  c[ProfCounter::kCycles] = cycles;
  c[ProfCounter::kInstructions] = instructions;
  c[ProfCounter::kLlcLoads] = llc_loads;
  c[ProfCounter::kLlcMisses] = llc_misses;
  c[ProfCounter::kBranchMisses] = branch_misses;
  c[ProfCounter::kStalledCycles] = stalled;
  c[ProfCounter::kTaskClockNs] = task_ns;
  return c;
}

TEST(CounterSet, DeltaSaturatesOnWrap) {
  const CounterSet a = make_set(100, 50);
  const CounterSet b = make_set(40, 80);  // cycles went "backwards"
  const CounterSet d = b.delta_since(a);
  EXPECT_EQ(d[ProfCounter::kCycles], 0u);
  EXPECT_EQ(d[ProfCounter::kInstructions], 30u);
}

TEST(ScriptedBackend, WalksTimelineAndClamps) {
  ScriptedBackend b({make_set(10, 20), make_set(30, 60)});
  ASSERT_TRUE(b.open());
  CounterSet c;
  ASSERT_TRUE(b.read(c));
  EXPECT_EQ(c[ProfCounter::kCycles], 10u);
  ASSERT_TRUE(b.read(c));
  EXPECT_EQ(c[ProfCounter::kCycles], 30u);
  ASSERT_TRUE(b.read(c));  // clamped at last entry
  EXPECT_EQ(c[ProfCounter::kCycles], 30u);
  EXPECT_EQ(b.reads_issued(), 3u);
}

// shift 0: every boundary reads, so each phase gets exactly the delta
// between consecutive timeline entries.
TEST(RankProfiler, ExactAttributionAtShiftZero) {
  auto backend = std::make_unique<ScriptedBackend>(std::vector<CounterSet>{
      make_set(0, 0),        // baseline at attach
      make_set(1000, 2000),  // after first boundary
      make_set(1500, 2600),  // after second
  });
  RankProfiler prof(0, std::move(backend), /*sample_shift=*/0);
  prof.attach();
  ASSERT_TRUE(prof.active());
  prof.on_phase(Phase::kIngest, 100);
  prof.on_phase(Phase::kPropagate, 100);
  const RankProfSnapshot s = prof.snapshot();
  EXPECT_EQ(s.phase[static_cast<std::size_t>(Phase::kIngest)]
             [ProfCounter::kCycles], 1000u);
  EXPECT_EQ(s.phase[static_cast<std::size_t>(Phase::kPropagate)]
             [ProfCounter::kCycles], 500u);
  EXPECT_EQ(s.phase[static_cast<std::size_t>(Phase::kPropagate)]
             [ProfCounter::kInstructions], 600u);
  EXPECT_EQ(s.boundaries, 2u);
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.read_failures, 0u);
}

// shift 1: the read at the 2nd boundary covers both phases; the delta is
// split proportionally to pending wall-clock and conserves exactly.
TEST(RankProfiler, ProportionalAttributionConserves) {
  auto backend = std::make_unique<ScriptedBackend>(std::vector<CounterSet>{
      make_set(0, 0),
      make_set(900, 9000),
  });
  RankProfiler prof(0, std::move(backend), /*sample_shift=*/1);
  prof.attach();
  prof.on_phase(Phase::kIngest, 100);     // no read yet
  prof.on_phase(Phase::kPropagate, 200);  // read covers 300 ns pending
  const RankProfSnapshot s = prof.snapshot();
  const auto ingest = static_cast<std::size_t>(Phase::kIngest);
  const auto prop = static_cast<std::size_t>(Phase::kPropagate);
  EXPECT_EQ(s.phase[ingest][ProfCounter::kCycles], 300u);  // 900 * 100/300
  EXPECT_EQ(s.phase[prop][ProfCounter::kCycles], 600u);    // 900 * 200/300
  // Exact conservation even when the split does not divide evenly.
  EXPECT_EQ(s.total()[ProfCounter::kCycles], 900u);
  EXPECT_EQ(s.total()[ProfCounter::kInstructions], 9000u);
  EXPECT_EQ(s.attributed_ns[ingest], 100u);
  EXPECT_EQ(s.attributed_ns[prop], 200u);
}

TEST(RankProfiler, ConservationWithUnevenSplit) {
  // 1000 cycles over pending {3, 3, 1} ns: integer shares 428/428/142 leave
  // a remainder of 2 which must land somewhere (largest pending phase), not
  // vanish.
  auto backend = std::make_unique<ScriptedBackend>(std::vector<CounterSet>{
      make_set(0, 0),
      make_set(1000, 0),
  });
  RankProfiler prof(0, std::move(backend), /*sample_shift=*/2);
  prof.attach();
  prof.on_phase(Phase::kIngest, 3);
  prof.on_phase(Phase::kPropagate, 3);
  prof.on_phase(Phase::kQuiesce, 1);
  prof.flush();
  const RankProfSnapshot s = prof.snapshot();
  EXPECT_EQ(s.total()[ProfCounter::kCycles], 1000u);
  EXPECT_EQ(s.total_attributed_ns(), 7u);
}

TEST(RankProfiler, SamplingStrideReadsEveryNth) {
  std::vector<CounterSet> timeline(10);
  for (std::size_t i = 0; i < timeline.size(); ++i)
    timeline[i] = make_set(i * 100, i * 200);
  auto owned = std::make_unique<ScriptedBackend>(std::move(timeline));
  ScriptedBackend* backend = owned.get();
  RankProfiler prof(0, std::move(owned), /*sample_shift=*/2);
  prof.attach();  // 1 baseline read
  for (int i = 0; i < 8; ++i) prof.on_phase(Phase::kPropagate, 10);
  const RankProfSnapshot s = prof.snapshot();
  EXPECT_EQ(s.boundaries, 8u);
  EXPECT_EQ(s.reads, 2u);  // boundaries 4 and 8 only
  EXPECT_EQ(backend->reads_issued(), 3u);  // baseline + 2 samples
}

TEST(RankProfiler, ReadFailuresAreCountedNotFatal) {
  auto owned = std::make_unique<ScriptedBackend>(std::vector<CounterSet>{
      make_set(0, 0),
      make_set(500, 500),
  });
  ScriptedBackend* backend = owned.get();
  RankProfiler prof(0, std::move(owned), /*sample_shift=*/0);
  prof.attach();
  backend->fail_next_reads(1);
  prof.on_phase(Phase::kIngest, 10);  // read fails; pending carries over
  prof.on_phase(Phase::kIngest, 10);  // succeeds, attributes both
  const RankProfSnapshot s = prof.snapshot();
  EXPECT_EQ(s.read_failures, 1u);
  EXPECT_EQ(s.reads, 1u);
  EXPECT_EQ(s.total()[ProfCounter::kCycles], 500u);
  EXPECT_EQ(s.attributed_ns[static_cast<std::size_t>(Phase::kIngest)], 20u);
}

TEST(RankProfiler, OpenFailureLeavesProfilerInert) {
  auto owned = std::make_unique<ScriptedBackend>(std::vector<CounterSet>{
      make_set(1, 1)});
  owned->set_open_fails(true);
  RankProfiler prof(0, std::move(owned), 0);
  prof.attach();
  EXPECT_FALSE(prof.active());
  prof.on_phase(Phase::kIngest, 10);  // must not crash or read
  prof.flush();
  const RankProfSnapshot s = prof.snapshot();
  EXPECT_EQ(s.reads, 0u);
  EXPECT_EQ(s.total()[ProfCounter::kCycles], 0u);
}

TEST(RankProfiler, MergeAggregatesRanks) {
  RankProfSnapshot a, b;
  a.rank = 0;
  a.phase[0] = make_set(100, 200);
  a.boundaries = 4;
  a.reads = 2;
  b.rank = 1;
  b.phase[0] = make_set(50, 70);
  b.boundaries = 3;
  b.read_failures = 1;
  a.merge(b);
  EXPECT_EQ(a.phase[0][ProfCounter::kCycles], 150u);
  EXPECT_EQ(a.boundaries, 7u);
  EXPECT_EQ(a.reads, 2u);
  EXPECT_EQ(a.read_failures, 1u);
}

TEST(ProfSnapshot, JsonRoundTrip) {
  ProfSnapshot snap;
  snap.enabled = true;
  snap.backend = "scripted";
  snap.degraded = true;
  snap.sample_shift = 3;
  snap.available = kAllProfCounters;
  RankProfSnapshot r0;
  r0.rank = 0;
  r0.phase[static_cast<std::size_t>(Phase::kIngest)] =
      make_set(1000, 2500, 80, 20, 5, 300, 12345);
  r0.attributed_ns[static_cast<std::size_t>(Phase::kIngest)] = 777;
  r0.boundaries = 12;
  r0.reads = 3;
  r0.read_failures = 1;
  snap.per_rank.push_back(r0);

  const Json doc = snap.to_json();
  // Re-parse through text to exercise the serialised form, not the tree.
  std::string error;
  const Json reparsed = Json::parse(doc.dump(2), &error);
  ASSERT_TRUE(error.empty()) << error;

  ProfSnapshot back;
  ASSERT_TRUE(ProfSnapshot::from_json(reparsed, back, &error)) << error;
  EXPECT_TRUE(back.enabled);
  EXPECT_EQ(back.backend, "scripted");
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.sample_shift, 3u);
  EXPECT_EQ(back.available, kAllProfCounters);
  ASSERT_EQ(back.per_rank.size(), 1u);
  const RankProfSnapshot& r = back.per_rank[0];
  EXPECT_EQ(r.phase[static_cast<std::size_t>(Phase::kIngest)].v,
            r0.phase[static_cast<std::size_t>(Phase::kIngest)].v);
  EXPECT_EQ(r.attributed_ns[static_cast<std::size_t>(Phase::kIngest)], 777u);
  EXPECT_EQ(r.boundaries, 12u);
  EXPECT_EQ(r.reads, 3u);
  EXPECT_EQ(r.read_failures, 1u);
}

TEST(ProfSnapshot, FromJsonRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = "remo-lineage-1";
  ProfSnapshot out;
  std::string error;
  EXPECT_FALSE(ProfSnapshot::from_json(doc, out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(ProfSnapshot, TotalsMergeAllRanks) {
  ProfSnapshot snap;
  snap.enabled = true;
  for (std::uint32_t r = 0; r < 3; ++r) {
    RankProfSnapshot rs;
    rs.rank = r;
    rs.phase[0] = make_set(100, 100);
    snap.per_rank.push_back(rs);
  }
  const RankProfSnapshot t = snap.totals();
  EXPECT_EQ(t.rank, kProfTotalsRank);
  EXPECT_EQ(t.phase[0][ProfCounter::kCycles], 300u);
}

TEST(ProfDerived, RatiosGuardZeroDenominators) {
  EXPECT_EQ(prof_ipc(make_set(0, 100)), 0.0);
  EXPECT_DOUBLE_EQ(prof_ipc(make_set(100, 250)), 2.5);
  EXPECT_EQ(prof_llc_miss_rate(make_set(0, 0, 0, 5)), 0.0);
  EXPECT_DOUBLE_EQ(prof_llc_miss_rate(make_set(0, 0, 100, 25)), 0.25);
  EXPECT_EQ(prof_branch_miss_per_kinst(make_set(0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(prof_branch_miss_per_kinst(make_set(0, 2000, 0, 0, 6)),
                   3.0);
  EXPECT_DOUBLE_EQ(prof_stalled_frac(make_set(100, 0, 0, 0, 0, 40)), 0.4);
}

// --- Prometheus exposition --------------------------------------------------

GaugeSample sample_with_prof() {
  GaugeSample s;
  s.prof.present = true;
  s.prof.backend = "scripted";
  s.prof.degraded = true;
  s.prof.phase[static_cast<std::size_t>(Phase::kPropagate)] =
      make_set(1000, 2000, 100, 10, 4, 200, 5000);
  s.prof.attributed_ns[static_cast<std::size_t>(Phase::kPropagate)] = 5000;
  s.prof.reads = 7;
  s.prof.read_failures = 1;
  return s;
}

TEST(ProfPrometheus, FamiliesPresentWithDedupedHeaders) {
  const std::string text = sample_with_prof().to_prometheus();
  for (const char* family :
       {"remo_prof_cycles_total", "remo_prof_instructions_total",
        "remo_prof_llc_loads_total", "remo_prof_llc_misses_total",
        "remo_prof_branch_misses_total", "remo_prof_stalled_cycles_total",
        "remo_prof_task_clock_seconds_total", "remo_prof_ipc",
        "remo_prof_llc_miss_rate", "remo_prof_backend_info",
        "remo_prof_reads_total", "remo_prof_read_failures_total"}) {
    EXPECT_NE(text.find(std::string("# HELP ") + family), std::string::npos)
        << family;
    // Exactly one HELP line per family even with one series per phase.
    const std::string help = std::string("# HELP ") + family + " ";
    const auto first = text.find(help);
    ASSERT_NE(first, std::string::npos) << family;
    EXPECT_EQ(text.find(help, first + 1), std::string::npos) << family;
  }
  EXPECT_NE(text.find("remo_prof_cycles_total{phase=\"propagate\"} 1000"),
            std::string::npos);
  EXPECT_NE(text.find("remo_prof_backend_info{backend=\"scripted\"} 1"),
            std::string::npos);
}

TEST(ProfPrometheus, AbsentWhenNotPresent) {
  GaugeSample s;
  EXPECT_EQ(s.to_prometheus().find("remo_prof_"), std::string::npos);
}

TEST(ProfGaugesJson, BlockEmittedOnlyWhenPresent) {
  const Json with = sample_with_prof().to_json();
  ASSERT_NE(with.find("prof"), nullptr);
  const Json* phases = with.find("prof")->find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("propagate"), nullptr);
  EXPECT_EQ(phases->find("propagate")->find("cycles")->as_uint(), 1000u);

  GaugeSample off;
  EXPECT_EQ(off.to_json().find("prof"), nullptr);
}

// --- Process rusage (the always-available floor) ----------------------------

TEST(ProcRusageTest, ReadsSaneValues) {
  // Touch some memory so max RSS is definitely nonzero.
  std::vector<char> ballast(1 << 20, 1);
  ballast.back() = 2;
  const ProcRusage r = read_proc_rusage();
  EXPECT_GT(r.max_rss_kb, 0u);
  EXPECT_GT(r.user_ns + r.sys_ns, 0u);

  const Json j = proc_rusage_json(r);
  for (const char* key :
       {"user_ns", "sys_ns", "max_rss_kb", "minor_faults", "major_faults",
        "voluntary_ctx_switches", "involuntary_ctx_switches"})
    EXPECT_NE(j.find(key), nullptr) << key;
}

// --- Backend resolution ------------------------------------------------------

TEST(BackendResolution, AutoNeverStaysAuto) {
  const ProfBackendKind k = resolve_prof_backend(ProfBackendKind::kAuto);
  EXPECT_NE(k, ProfBackendKind::kAuto);
  // Explicit kinds pass through.
  EXPECT_EQ(resolve_prof_backend(ProfBackendKind::kNoop),
            ProfBackendKind::kNoop);
  EXPECT_EQ(resolve_prof_backend(ProfBackendKind::kRusage),
            ProfBackendKind::kRusage);
}

TEST(BackendResolution, NoopBackendIsInert) {
  auto b = make_counter_backend(ProfBackendKind::kNoop);
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->open());
  EXPECT_EQ(b->available(), 0u);
}

TEST(BackendResolution, RusageBackendProvidesTaskClock) {
  auto b = make_counter_backend(ProfBackendKind::kRusage);
  ASSERT_NE(b, nullptr);
  if (!b->open()) GTEST_SKIP() << "no thread rusage on this platform";
  EXPECT_EQ(b->available(),
            prof_counter_bit(ProfCounter::kTaskClockNs) |
                prof_counter_bit(ProfCounter::kMinorFaults) |
                prof_counter_bit(ProfCounter::kMajorFaults));
  CounterSet before, after;
  ASSERT_TRUE(b->read(before));
  // Burn a little CPU so the task clock must advance.
  volatile std::uint64_t sink = 0;
  for (std::uint64_t i = 0; i < 20'000'000; ++i) sink = sink + i;
  ASSERT_TRUE(b->read(after));
  EXPECT_GE(after[ProfCounter::kTaskClockNs],
            before[ProfCounter::kTaskClockNs]);
  EXPECT_GT(after[ProfCounter::kTaskClockNs], 0u);
}

// --- Report formatting -------------------------------------------------------

TEST(ProfReport, DegradedBackendBanner) {
  ProfSnapshot snap;
  snap.enabled = true;
  snap.backend = "rusage";
  snap.degraded = true;
  snap.available = prof_counter_bit(ProfCounter::kTaskClockNs);
  RankProfSnapshot r;
  r.attributed_ns[0] = 1000;
  snap.per_rank.push_back(r);
  const std::string report = format_prof_report(snap);
  EXPECT_NE(report.find("degraded backend"), std::string::npos);
  EXPECT_NE(report.find("rusage"), std::string::npos);
}

TEST(ProfReport, HardwareTableShowsIpc) {
  ProfSnapshot snap;
  snap.enabled = true;
  snap.backend = "perf_event";
  snap.available = kAllProfCounters;
  RankProfSnapshot r;
  r.phase[static_cast<std::size_t>(Phase::kPropagate)] =
      make_set(1000, 2500, 100, 10, 4, 200, 5000);
  r.attributed_ns[static_cast<std::size_t>(Phase::kPropagate)] = 5000;
  r.reads = 1;
  snap.per_rank.push_back(r);
  const std::string report = format_prof_report(snap);
  EXPECT_EQ(report.find("degraded backend"), std::string::npos);
  EXPECT_NE(report.find("propagate"), std::string::npos);
  EXPECT_NE(report.find("2.50"), std::string::npos);  // IPC column
}

TEST(ProfReport, JoinsSpanStages) {
  ProfSnapshot snap;
  snap.enabled = true;
  snap.backend = "perf_event";
  snap.available = kAllProfCounters;
  RankProfSnapshot r;
  r.phase[static_cast<std::size_t>(Phase::kPropagate)] = make_set(1000, 2000);
  r.attributed_ns[static_cast<std::size_t>(Phase::kPropagate)] = 5000;
  snap.per_rank.push_back(r);

  SpanSnapshot spans;
  spans.completed = 3;
  for (std::size_t i = 0; i < kWriteStageCount; ++i) {
    LatencyHistogram h;
    h.record(1000 * (i + 1));
    spans.stages[i].hist = h.snapshot();
  }
  const std::string report = format_prof_report(snap, &spans);
  EXPECT_NE(report.find("write-path"), std::string::npos);
  EXPECT_NE(report.find(write_stage_name(static_cast<WriteStage>(0))),
            std::string::npos);
}

// --- Stack sampler -----------------------------------------------------------

TEST(StackSamplerTest, FoldedOutputFromBusyThread) {
  if (!StackSampler::supported())
    GTEST_SKIP() << "stack sampling unsupported on this platform";
  StackSampler sampler(StackSamplerConfig{/*period_us=*/200, /*max_depth=*/48});
  ASSERT_TRUE(sampler.start());
  std::atomic<bool> stop{false};
  std::thread busy([&] {
    sampler.register_current_thread("busy");
    volatile std::uint64_t sink = 0;
    while (!stop.load(std::memory_order_relaxed))
      for (int i = 0; i < 1000; ++i) sink = sink + static_cast<std::uint64_t>(i);
  });
  // Let it collect for a while.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const std::string folded = sampler.folded();  // stops the sampler
  stop.store(true);
  busy.join();
  EXPECT_FALSE(sampler.running());
  if (sampler.samples() == 0)
    GTEST_SKIP() << "no samples landed (loaded CI box)";
  EXPECT_NE(folded.find("busy"), std::string::npos);
  // Every line is "frames count" with a positive trailing count.
  std::istringstream in(folded);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const auto sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_GT(std::strtoull(line.c_str() + sp + 1, nullptr, 10), 0u) << line;
  }
}

TEST(StackSamplerTest, OnlyOneInstanceRuns) {
  if (!StackSampler::supported()) GTEST_SKIP();
  StackSampler first;
  ASSERT_TRUE(first.start());
  StackSampler second;
  EXPECT_FALSE(second.start());
  first.stop();
  // Slot freed: a new sampler may start again.
  StackSampler third;
  EXPECT_TRUE(third.start());
  third.stop();
}

}  // namespace
}  // namespace remo::obs::test
