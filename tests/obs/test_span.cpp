// Write-path span recorder: exemplar histograms, scripted batch
// timelines, watermark-based closing, sampling, overflow accounting, JSON
// round-trips, and the tail-attribution report (docs/OBSERVABILITY.md
// "Write-path spans").
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "obs/span.hpp"

namespace remo::obs::test {
namespace {

// --- ExemplarHistogram ------------------------------------------------------

TEST(ExemplarHistogram, BucketKeepsLargestSampleAsExemplar) {
  ExemplarHistogram h;
  // Same log bucket (values this close share one), different traces.
  h.record(1000, make_cause(kSpanOrigin, 1));
  h.record(1010, make_cause(kSpanOrigin, 2));
  h.record(1005, make_cause(kSpanOrigin, 3));
  const ExemplarHistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace, make_cause(kSpanOrigin, 2));
  EXPECT_EQ(snap.exemplars[0].value_ns, 1010u);
  EXPECT_EQ(snap.hist.count, 3u);
}

TEST(ExemplarHistogram, TieKeepsEarliestTrace) {
  ExemplarHistogram h;
  h.record(500, make_cause(kSpanOrigin, 7));
  h.record(500, make_cause(kSpanOrigin, 8));
  const ExemplarHistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.exemplars.size(), 1u);
  EXPECT_EQ(snap.exemplars[0].trace, make_cause(kSpanOrigin, 7));
}

TEST(ExemplarHistogram, AtOrAboveSelectsTailBuckets) {
  ExemplarHistogram h;
  h.record(100, make_cause(kSpanOrigin, 1));
  h.record(10'000, make_cause(kSpanOrigin, 2));
  h.record(1'000'000, make_cause(kSpanOrigin, 3));
  const ExemplarHistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.exemplars.size(), 3u);
  const auto tail = snap.at_or_above(10'000);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].trace, make_cause(kSpanOrigin, 2));
  EXPECT_EQ(tail[1].trace, make_cause(kSpanOrigin, 3));
  // A threshold above everything selects nothing.
  EXPECT_TRUE(snap.at_or_above(std::uint64_t{1} << 62).empty());
}

TEST(ExemplarHistogram, PercentileMatchesPlainHistogram) {
  ExemplarHistogram h;
  LatencyHistogram plain;
  for (std::uint64_t v = 1; v <= 1000; ++v) {
    h.record(v * 37, make_cause(kSpanOrigin, static_cast<std::uint32_t>(v)));
    plain.record(v * 37);
  }
  EXPECT_EQ(h.percentile(50.0), plain.snapshot().p50());
  EXPECT_EQ(h.percentile(99.0), plain.snapshot().p99());
  EXPECT_EQ(h.count(), 1000u);
}

TEST(ExemplarHistogram, JsonRoundTrip) {
  ExemplarHistogram h;
  h.record(123, make_cause(kSpanOrigin, 1));
  h.record(456'789, make_cause(kSpanOrigin, 2));
  const ExemplarHistogramSnapshot snap = h.snapshot();
  std::string error;
  ExemplarHistogramSnapshot back;
  ASSERT_TRUE(
      ExemplarHistogramSnapshot::from_json(snap.to_json(), back, &error))
      << error;
  EXPECT_EQ(back.hist.count, snap.hist.count);
  EXPECT_EQ(back.hist.sum, snap.hist.sum);
  EXPECT_EQ(back.hist.min, snap.hist.min);
  EXPECT_EQ(back.hist.max, snap.hist.max);
  EXPECT_EQ(back.hist.p99(), snap.hist.p99());
  ASSERT_EQ(back.exemplars.size(), snap.exemplars.size());
  for (std::size_t i = 0; i < back.exemplars.size(); ++i) {
    EXPECT_EQ(back.exemplars[i].bucket, snap.exemplars[i].bucket);
    EXPECT_EQ(back.exemplars[i].trace, snap.exemplars[i].trace);
    EXPECT_EQ(back.exemplars[i].value_ns, snap.exemplars[i].value_ns);
  }
}

// --- SpanRecorder: scripted timelines --------------------------------------

TEST(SpanRecorder, FullLifecycleRecordsEveryStage) {
  SpanRecorder rec;
  // queued at 100, picked up at 150 -> kQueue = 50.
  const TraceId id = rec.begin_batch(100, 150);
  ASSERT_NE(id, 0u);
  EXPECT_EQ(cause_origin(id), kSpanOrigin);
  rec.stage(id, WriteStage::kPartition, 10);
  rec.stage(id, WriteStage::kDispatch, 20);
  rec.stage(id, WriteStage::kInject, 30);
  rec.record_admitted(id, /*watermark=*/500, /*now_ns=*/210, /*events=*/64,
                      /*waves=*/3, /*serial_fallback=*/false);
  rec.on_epoch_drained(/*watermark=*/500, /*ns=*/300);
  rec.on_view_published(/*watermark=*/500, /*ns=*/320);

  const SpanSnapshot snap = rec.snapshot();
  EXPECT_EQ(snap.batches_sampled, 1u);
  EXPECT_EQ(snap.completed, 1u);
  EXPECT_EQ(snap.open, 0u);
  ASSERT_EQ(snap.spans.size(), 1u);
  const WriteSpan& s = snap.spans[0];
  EXPECT_EQ(s.id, id);
  EXPECT_EQ(s.queued_ns, 100u);
  EXPECT_EQ(s.begin_ns, 150u);
  EXPECT_EQ(s.admitted_ns, 210u);
  EXPECT_EQ(s.drained_ns, 300u);
  EXPECT_EQ(s.published_ns, 320u);
  EXPECT_EQ(s.events, 64u);
  EXPECT_EQ(s.waves, 3u);
  EXPECT_FALSE(s.serial_fallback);
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kQueue)], 50u);
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kPartition)], 10u);
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kDispatch)], 20u);
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kInject)], 30u);
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kDrain)], 90u);    // 300-210
  EXPECT_EQ(s.stage_ns[static_cast<int>(WriteStage::kPublish)], 20u);  // 320-300
  EXPECT_EQ(s.total_ns, 220u);  // 320 - 100: write-to-readable freshness
  EXPECT_EQ(snap.freshness.hist.count, 1u);
  // Milestones are monotone by construction.
  EXPECT_LE(s.queued_ns, s.begin_ns);
  EXPECT_LE(s.begin_ns, s.admitted_ns);
  EXPECT_LE(s.admitted_ns, s.drained_ns);
  EXPECT_LE(s.drained_ns, s.published_ns);
}

TEST(SpanRecorder, PublishWithoutDrainChargesWaitToDrainStage) {
  SpanRecorder rec;
  const TraceId id = rec.begin_batch(0, 0);
  rec.record_admitted(id, 100, /*now_ns=*/10, 8, 1, false);
  // No epoch-drain notification: the covering publish closes the span and
  // the whole admitted->publish wait lands on kDrain.
  rec.on_view_published(/*watermark=*/100, /*ns=*/50);
  const SpanSnapshot snap = rec.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].stage_ns[static_cast<int>(WriteStage::kDrain)], 40u);
  EXPECT_EQ(snap.spans[0].stage_ns[static_cast<int>(WriteStage::kPublish)], 0u);
  EXPECT_EQ(snap.spans[0].total_ns, 50u);
}

TEST(SpanRecorder, WatermarkComparisonClosesOnlyCoveredSpans) {
  SpanRecorder rec;
  const TraceId a = rec.begin_batch(0, 0);
  rec.record_admitted(a, /*watermark=*/100, 10, 8, 1, false);
  const TraceId b = rec.begin_batch(0, 20);
  rec.record_admitted(b, /*watermark=*/200, 30, 8, 1, false);

  rec.on_view_published(/*watermark=*/150, /*ns=*/40);  // covers a, not b
  SpanCounts c = rec.counts();
  EXPECT_EQ(c.completed, 1u);
  EXPECT_EQ(c.open, 1u);
  EXPECT_NE(rec.snapshot().find(a), nullptr);
  EXPECT_EQ(rec.snapshot().find(b), nullptr);  // still open

  rec.on_view_published(/*watermark=*/200, /*ns=*/60);
  c = rec.counts();
  EXPECT_EQ(c.completed, 2u);
  EXPECT_EQ(c.open, 0u);
  EXPECT_NE(rec.snapshot().find(b), nullptr);
}

TEST(SpanRecorder, UnadmittedSpansSurvivePublishes) {
  SpanRecorder rec;
  const TraceId id = rec.begin_batch(0, 0);
  ASSERT_NE(id, 0u);
  // Still mid-dispatch (no record_admitted): a publish must not close it.
  rec.on_view_published(~std::uint64_t{0}, 100);
  EXPECT_EQ(rec.counts().open, 1u);
  EXPECT_EQ(rec.counts().completed, 0u);
}

TEST(SpanRecorder, SamplingShiftSpansEveryNthBatch) {
  SpanRecorder rec({.sample_shift = 2});  // every 4th
  int sampled = 0;
  for (int i = 0; i < 16; ++i)
    if (rec.begin_batch(0, static_cast<std::uint64_t>(i)) != 0) ++sampled;
  EXPECT_EQ(sampled, 4);
  const SpanCounts c = rec.counts();
  EXPECT_EQ(c.batches_seen, 16u);
  EXPECT_EQ(c.batches_sampled, 4u);
}

TEST(SpanRecorder, OpenTableOverflowDropsAndCounts) {
  SpanRecorder rec({.max_open = 2});
  EXPECT_NE(rec.begin_batch(0, 0), 0u);
  EXPECT_NE(rec.begin_batch(0, 1), 0u);
  EXPECT_EQ(rec.begin_batch(0, 2), 0u);  // table full
  const SpanCounts c = rec.counts();
  EXPECT_EQ(c.open, 2u);
  EXPECT_EQ(c.dropped_open, 1u);
  // Zero-id calls are no-ops, not crashes.
  rec.stage(0, WriteStage::kInject, 5);
  rec.record_admitted(0, 1, 1, 1, 1, false);
}

TEST(SpanRecorder, HistoryRingEvictsOldestCompleted) {
  SpanRecorder rec({.history = 2});
  TraceId ids[3];
  for (int i = 0; i < 3; ++i) {
    ids[i] = rec.begin_batch(0, static_cast<std::uint64_t>(i));
    rec.record_admitted(ids[i], static_cast<std::uint64_t>(i + 1),
                        static_cast<std::uint64_t>(i), 1, 1, false);
    rec.on_view_published(static_cast<std::uint64_t>(i + 1),
                          static_cast<std::uint64_t>(10 + i));
  }
  const SpanSnapshot snap = rec.snapshot();
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.evicted, 1u);
  ASSERT_EQ(snap.spans.size(), 2u);
  EXPECT_EQ(snap.find(ids[0]), nullptr);  // evicted
  EXPECT_NE(snap.find(ids[1]), nullptr);
  EXPECT_NE(snap.find(ids[2]), nullptr);
  // Freshness histogram keeps all three — eviction only affects resolution.
  EXPECT_EQ(snap.freshness.hist.count, 3u);
}

TEST(SpanRecorder, TraceIdsAreUniqueAndSpanOriginated) {
  SpanRecorder rec;
  std::vector<TraceId> ids;
  for (int i = 0; i < 100; ++i) {
    const TraceId id = rec.begin_batch(0, static_cast<std::uint64_t>(i));
    ASSERT_NE(id, 0u);
    EXPECT_EQ(cause_origin(id), kSpanOrigin);
    for (const TraceId prev : ids) EXPECT_NE(id, prev);
    ids.push_back(id);
  }
}

TEST(SpanRecorder, SnapshotJsonRoundTrip) {
  SpanRecorder rec;
  for (int i = 0; i < 5; ++i) {
    const TraceId id = rec.begin_batch(static_cast<std::uint64_t>(i * 10),
                                       static_cast<std::uint64_t>(i * 10 + 5));
    rec.stage(id, WriteStage::kPartition, 3);
    rec.record_admitted(id, static_cast<std::uint64_t>((i + 1) * 100),
                        static_cast<std::uint64_t>(i * 10 + 9), 32, 2, i == 0);
  }
  rec.on_epoch_drained(500, 90);
  rec.on_view_published(500, 100);

  const SpanSnapshot snap = rec.snapshot();
  EXPECT_EQ(snap.completed, 5u);
  std::string error;
  SpanSnapshot back;
  ASSERT_TRUE(SpanSnapshot::from_json(snap.to_json(), back, &error)) << error;
  EXPECT_EQ(back.batches_seen, snap.batches_seen);
  EXPECT_EQ(back.batches_sampled, snap.batches_sampled);
  EXPECT_EQ(back.completed, snap.completed);
  EXPECT_EQ(back.open, snap.open);
  EXPECT_EQ(back.freshness.hist.count, snap.freshness.hist.count);
  EXPECT_EQ(back.freshness.hist.p99(), snap.freshness.hist.p99());
  ASSERT_EQ(back.spans.size(), snap.spans.size());
  for (std::size_t i = 0; i < back.spans.size(); ++i) {
    EXPECT_EQ(back.spans[i].id, snap.spans[i].id);
    EXPECT_EQ(back.spans[i].total_ns, snap.spans[i].total_ns);
    EXPECT_EQ(back.spans[i].stage_ns, snap.spans[i].stage_ns);
    EXPECT_EQ(back.spans[i].serial_fallback, snap.spans[i].serial_fallback);
  }
  for (std::size_t st = 0; st < kWriteStageCount; ++st)
    EXPECT_EQ(back.stages[st].hist.count, snap.stages[st].hist.count);
}

TEST(SpanRecorder, FromJsonRejectsWrongSchema) {
  Json doc = Json::object();
  doc["schema"] = std::string("remo-lineage-1");
  SpanSnapshot out;
  std::string error;
  EXPECT_FALSE(SpanSnapshot::from_json(doc, out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(SpanRecorder, TraceTrackEmitsFlowChainPerCompletedSpan) {
  SpanRecorder rec;
  const TraceId id = rec.begin_batch(0, 10);
  rec.record_admitted(id, 100, 20, 8, 1, false);
  rec.on_epoch_drained(100, 30);
  rec.on_view_published(100, 40);
  const TraceTrack track = rec.trace_track(/*tid=*/9);
  EXPECT_EQ(track.tid, 9u);
  ASSERT_EQ(track.events.size(), 4u);
  EXPECT_STREQ(track.events[0].name, "wp:queue");
  EXPECT_STREQ(track.events[1].name, "wp:admit");
  EXPECT_STREQ(track.events[2].name, "wp:drain");
  EXPECT_STREQ(track.events[3].name, "wp:publish");
  for (const TraceEvent& e : track.events) {
    EXPECT_EQ(e.flow_id, id);
    EXPECT_NE(e.flow, FlowPhase::kNone);
  }
  EXPECT_EQ(track.events[0].flow, FlowPhase::kStart);
  EXPECT_EQ(track.events[3].flow, FlowPhase::kEnd);
}

// --- Tail report ------------------------------------------------------------

TEST(TailReport, AttributesStagesAndResolvesExemplars) {
  SpanRecorder rec;
  // 20 fast spans and one slow outlier dominated by drain.
  for (int i = 0; i < 20; ++i) {
    const TraceId id = rec.begin_batch(static_cast<std::uint64_t>(i * 1000),
                                       static_cast<std::uint64_t>(i * 1000 + 10));
    rec.stage(id, WriteStage::kPartition, 5);
    rec.stage(id, WriteStage::kInject, 20);
    rec.record_admitted(id, static_cast<std::uint64_t>(i + 1),
                        static_cast<std::uint64_t>(i * 1000 + 40), 16, 1,
                        false);
    rec.on_epoch_drained(static_cast<std::uint64_t>(i + 1),
                         static_cast<std::uint64_t>(i * 1000 + 60));
    rec.on_view_published(static_cast<std::uint64_t>(i + 1),
                          static_cast<std::uint64_t>(i * 1000 + 80));
  }
  const TraceId slow = rec.begin_batch(100'000, 100'010);
  rec.stage(slow, WriteStage::kPartition, 5);
  rec.record_admitted(slow, 1000, 100'040, 16, 1, false);
  rec.on_epoch_drained(1000, 1'100'000);  // ~1 ms drain
  rec.on_view_published(1000, 1'100'100);

  const SpanSnapshot snap = rec.snapshot();
  const std::string report = format_tail_report(snap, 99.0);
  // The per-stage table names every stage.
  for (std::size_t i = 0; i < kWriteStageCount; ++i)
    EXPECT_NE(report.find(write_stage_name(static_cast<WriteStage>(i))),
              std::string::npos)
        << report;
  // Drain dominates the tail, and the slow span's trace id appears as a
  // resolvable exemplar with its full breakdown.
  char idbuf[16];
  std::snprintf(idbuf, sizeof idbuf, "0x%08x", slow);
  EXPECT_NE(report.find(idbuf), std::string::npos) << report;
  EXPECT_NE(report.find("drain"), std::string::npos);
  EXPECT_NE(report.find("exemplars"), std::string::npos);
}

TEST(TailReport, EmptySnapshotDoesNotCrash) {
  const SpanSnapshot snap;
  const std::string report = format_tail_report(snap);
  EXPECT_NE(report.find("0 batches"), std::string::npos) << report;
}

}  // namespace
}  // namespace remo::obs::test
