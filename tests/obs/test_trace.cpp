#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "obs/trace.hpp"

namespace remo::obs::test {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(TraceBuffer, RetainsEventsInOrder) {
  TraceBuffer buf(8);
  buf.emit("a", 100, 10);
  buf.emit("b", 200, 20, "count", 7);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_EQ(events[0].ts_ns, 100u);
  EXPECT_EQ(events[0].dur_ns, 10u);
  EXPECT_EQ(events[0].arg_name, nullptr);
  EXPECT_STREQ(events[1].arg_name, "count");
  EXPECT_EQ(events[1].arg_value, 7u);
  EXPECT_EQ(buf.emitted(), 2u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, RingWrapKeepsNewestWindow) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i) buf.emit("e", i * 100, 1, "i", i);
  EXPECT_EQ(buf.emitted(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].arg_value, 6 + i);  // the last four, oldest first
    EXPECT_EQ(events[i].ts_ns, (6 + i) * 100);
  }
}

TEST(TraceBuffer, ZeroCapacityClampsToOne) {
  TraceBuffer buf(0);
  buf.emit("x", 1, 1);
  buf.emit("y", 2, 1);
  EXPECT_EQ(buf.capacity(), 1u);
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "y");
}

TEST(TraceWriter, EmitsParsableChromeTraceJson) {
  TraceTrack rank0{"rank 0", 0, {}};
  // Deliberately out of chronological order: the engine emits enclosing
  // slices after their nested children, so the writer must sort per track.
  rank0.events.push_back(TraceEvent{"drain", "events", 5000, 4000, 32});
  rank0.events.push_back(TraceEvent{"harvest", nullptr, 6000, 1000, 0});
  rank0.events.push_back(TraceEvent{"ingest", "events", 1000, 2000, 64});
  TraceTrack main{"main", 1, {}};
  main.events.push_back(TraceEvent{"collect", "vertices", 4000, 3000, 12});

  const std::string path = temp_path("remo_trace_test.json");
  ASSERT_TRUE(write_chrome_trace(path, "remo-test", {rank0, main}));

  std::string error;
  const Json doc = Json::parse(slurp(path), &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_TRUE(doc.is_object());

  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // Validate the format contract: metadata names the process and both
  // threads; every slice is a complete event with the required keys; and
  // within each (pid, tid) track the "X" timestamps never go backwards.
  std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts;
  int slices = 0, metadata = 0;
  bool saw_process_name = false;
  std::map<std::string, bool> thread_names;
  for (const Json& ev : events->items()) {
    ASSERT_TRUE(ev.is_object());
    const Json* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->as_string() == "M") {
      ++metadata;
      const Json* name = ev.find("name");
      ASSERT_NE(name, nullptr);
      if (name->as_string() == "process_name") saw_process_name = true;
      if (name->as_string() == "thread_name") {
        const Json* args = ev.find("args");
        ASSERT_NE(args, nullptr);
        thread_names[args->find("name")->as_string()] = true;
      }
      continue;
    }
    ASSERT_EQ(ph->as_string(), "X");
    ++slices;
    for (const char* key : {"name", "pid", "tid", "ts", "dur"})
      EXPECT_TRUE(ev.contains(key)) << "slice missing " << key;
    const auto track = std::make_pair(ev.find("pid")->as_int(),
                                      ev.find("tid")->as_int());
    const double ts = ev.find("ts")->as_double();
    auto it = last_ts.find(track);
    if (it != last_ts.end())
      EXPECT_GE(ts, it->second) << "timestamps regress within a track";
    last_ts[track] = ts;
  }
  EXPECT_EQ(slices, 4);
  EXPECT_GE(metadata, 3);  // process_name + one thread_name per track
  EXPECT_TRUE(saw_process_name);
  EXPECT_TRUE(thread_names["rank 0"]);
  EXPECT_TRUE(thread_names["main"]);

  // Timestamp unit conversion: ns -> us floats.
  bool saw_ingest = false;
  for (const Json& ev : events->items()) {
    if (const Json* name = ev.find("name");
        name && name->as_string() == "ingest") {
      saw_ingest = true;
      EXPECT_DOUBLE_EQ(ev.find("ts")->as_double(), 1.0);
      EXPECT_DOUBLE_EQ(ev.find("dur")->as_double(), 2.0);
      EXPECT_EQ(ev.find("args")->find("events")->as_uint(), 64u);
    }
  }
  EXPECT_TRUE(saw_ingest);
  std::remove(path.c_str());
}

TEST(TraceWriter, ExportAfterRingWraparoundIsValidAndOrdered) {
  // Fill a small ring well past capacity, then export: the file must still
  // be valid chrome-trace JSON, the retained window must be exactly the
  // newest `capacity` slices in chronological order, and the overwritten
  // prefix must be gone.
  TraceBuffer buf(16);
  for (std::uint64_t i = 0; i < 100; ++i) buf.emit("tick", i * 1000, 500, "i", i);
  EXPECT_EQ(buf.emitted(), 100u);
  EXPECT_EQ(buf.dropped(), 84u);

  const std::string path = temp_path("remo_trace_wrap.json");
  ASSERT_TRUE(write_chrome_trace(path, "remo-test",
                                 {TraceTrack{"rank 0", 0, buf.events()}}));

  std::string error;
  const Json doc = Json::parse(slurp(path), &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  std::vector<std::uint64_t> retained;
  double last_ts = -1.0;
  for (const Json& ev : events->items()) {
    if (ev.find("ph")->as_string() != "X") continue;
    const double ts = ev.find("ts")->as_double();
    EXPECT_GE(ts, last_ts) << "timestamps regress after wraparound";
    last_ts = ts;
    retained.push_back(ev.find("args")->find("i")->as_uint());
  }
  ASSERT_EQ(retained.size(), 16u);
  for (std::size_t k = 0; k < retained.size(); ++k)
    EXPECT_EQ(retained[k], 84 + k);  // oldest slices dropped, newest kept
  std::remove(path.c_str());
}

TEST(TraceBuffer, RecentEventsReturnsNewestTail) {
  TraceBuffer buf(8);
  for (std::uint64_t i = 0; i < 20; ++i) buf.emit("e", i, 1, "i", i);
  const auto tail = buf.recent_events(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].arg_value, 17u);
  EXPECT_EQ(tail[2].arg_value, 19u);
  // Asking for more than the window yields the whole retained window.
  EXPECT_EQ(buf.recent_events(100).size(), 8u);
}

TEST(TraceWriter, EmptyTracksStillValid) {
  const std::string path = temp_path("remo_trace_empty.json");
  ASSERT_TRUE(write_chrome_trace(path, "remo-test", {}));
  std::string error;
  const Json doc = Json::parse(slurp(path), &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Only the process metadata record.
  for (const Json& ev : events->items())
    EXPECT_EQ(ev.find("ph")->as_string(), "M");
  std::remove(path.c_str());
}

TEST(TraceWriter, FailsOnUnwritablePath) {
  EXPECT_FALSE(write_chrome_trace("/nonexistent-dir/trace.json", "p", {}));
}

TEST(TraceWriter, FlowContinuationsNeverOrphanedAfterWraparound) {
  // A cause's flow-begin lives on the ingesting rank's ring while its
  // continuations land on other ranks' rings; wraparound can overwrite the
  // begin while continuations survive. The export must never emit a flow
  // step/end ("t"/"f") whose begin ("s") is gone — viewers render those as
  // dangling arrows. Build exactly that shape: a tiny begin ring that
  // forgets most starts, a roomy ring that remembers every continuation.
  TraceBuffer begins(4), conts(64);
  for (std::uint64_t f = 1; f <= 20; ++f) {
    begins.emit_flow("cause", f * 1000, 100, f, FlowPhase::kStart, "cause", f);
    conts.emit_flow("cause", f * 1000 + 500, 100, f, FlowPhase::kStep);
    conts.emit_flow("cause", f * 1000 + 700, 100, f, FlowPhase::kEnd);
  }
  EXPECT_EQ(begins.dropped(), 16u);  // starts 1..16 overwritten

  const std::string path = temp_path("remo_trace_flow_wrap.json");
  ASSERT_TRUE(write_chrome_trace(path, "remo-test",
                                 {TraceTrack{"rank 0", 0, begins.events()},
                                  TraceTrack{"rank 1", 1, conts.events()}}));

  std::string error;
  const Json doc = Json::parse(slurp(path), &error);
  ASSERT_TRUE(error.empty()) << error;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);

  // Round-trip check: every continuation id in the emitted JSON must have a
  // matching begin, and surviving flows keep their full s -> t -> f chain.
  std::map<std::uint64_t, int> begun, stepped, ended;
  for (const Json& ev : events->items()) {
    const std::string ph = ev.find("ph")->as_string();
    if (ph != "s" && ph != "t" && ph != "f") continue;
    const std::uint64_t id = ev.find("id")->as_uint();
    if (ph == "s") ++begun[id];
    if (ph == "t") ++stepped[id];
    if (ph == "f") ++ended[id];
    if (ph != "s") {
      EXPECT_EQ(begun.count(id), 1u) << "flow " << id << " " << ph
                                     << " emitted without a begin";
      EXPECT_TRUE(ev.contains("bp")) << "continuation must bind to enclosing";
    }
  }
  ASSERT_EQ(begun.size(), 4u);  // the retained window: flows 17..20
  for (std::uint64_t f = 17; f <= 20; ++f) {
    EXPECT_EQ(begun[f], 1) << f;
    EXPECT_EQ(stepped[f], 1) << f;
    EXPECT_EQ(ended[f], 1) << f;
  }
  for (std::uint64_t f = 1; f <= 16; ++f) {
    EXPECT_EQ(stepped.count(f), 0u) << f;
    EXPECT_EQ(ended.count(f), 0u) << f;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace remo::obs::test
