// Regression: the sender-side coalescing key must include the epoch.
// Merging a pre-bump Update into a post-bump one (or vice versa) would let
// a versioned collection's frozen S_prev view observe a value from the
// wrong side of the epoch boundary. Forces an epoch bump between enqueue
// and flush and asserts the visitors stay distinct.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/comm.hpp"

namespace remo::test {
namespace {

StateWord min_combine(const void*, StateWord a, StateWord b) {
  return a < b ? a : b;
}

Visitor update(VertexId target, VertexId other, StateWord value,
               std::uint16_t epoch) {
  Visitor v{};
  v.target = target;
  v.other = other;
  v.value = value;
  v.kind = VisitKind::kUpdate;
  v.algo = 0;
  v.epoch = epoch;
  return v;
}

TEST(CoalesceEpoch, EpochBumpBetweenEnqueueAndFlushKeepsVisitorsDistinct) {
  Comm comm(2, /*batch_size=*/64);
  comm.register_combiner(0, nullptr, &min_combine);

  // Same (program, target, sender) key; the epoch bumps in between — as it
  // does when a versioned collection starts while updates sit buffered.
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, /*epoch=*/4)));
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 8, /*epoch=*/5)));
  comm.flush(0);

  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 2u) << "epoch-crossing updates must never merge";
  EXPECT_EQ(out[0].epoch, 4u);
  EXPECT_EQ(out[0].value, 10u);
  EXPECT_EQ(out[1].epoch, 5u);
  EXPECT_EQ(out[1].value, 8u);
  // Both were accounted in their own parity.
  EXPECT_EQ(comm.in_flight(0), 1);
  EXPECT_EQ(comm.in_flight(1), 1);
}

TEST(CoalesceEpoch, SameEpochStillCoalesces) {
  // Control: with matching epochs the pair DOES merge (second send reports
  // coalesced-away and only one visitor travels).
  Comm comm(2, /*batch_size=*/64);
  comm.register_combiner(0, nullptr, &min_combine);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, /*epoch=*/4)));
  EXPECT_TRUE(comm.send(0, 1, update(7, 3, 8, /*epoch=*/4)));
  comm.flush(0);

  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 8u);  // min(10, 8)
  EXPECT_EQ(comm.in_flight(0), 1);
}

TEST(CoalesceEpoch, EpochParityWrapKeepsDistinctEpochsApart) {
  // Epochs 4 and 6 share parity (both land in the same in-flight shard)
  // but are different epochs: they must still not merge.
  Comm comm(2, /*batch_size=*/64);
  comm.register_combiner(0, nullptr, &min_combine);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, /*epoch=*/4)));
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 8, /*epoch=*/6)));
  comm.flush(0);

  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace remo::test
