#include <gtest/gtest.h>

#include <vector>

#include "runtime/comm.hpp"

namespace remo::test {
namespace {

Visitor basic(VertexId target, std::uint16_t epoch = 0) {
  Visitor v{};
  v.target = target;
  v.kind = VisitKind::kUpdate;
  v.epoch = epoch;
  return v;
}

Visitor control() {
  Visitor v{};
  v.kind = VisitKind::kControl;
  return v;
}

TEST(Comm, SendBuffersUntilFlush) {
  Comm comm(2, /*batch_size=*/16);
  comm.send(0, 1, basic(42));
  EXPECT_TRUE(comm.has_buffered(0));
  EXPECT_TRUE(comm.mailbox(1).empty());  // not yet delivered
  EXPECT_EQ(comm.in_flight_total(), 1);  // but already accounted

  comm.flush(0);
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 42u);
}

TEST(Comm, BatchSizeTriggersAutoFlush) {
  Comm comm(2, /*batch_size=*/4);
  for (int i = 0; i < 4; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  // Hitting the batch size flushed automatically.
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  EXPECT_EQ(out.size(), 4u);
}

TEST(Comm, InFlightAccountingByEpochParity) {
  Comm comm(2);
  comm.send(0, 1, basic(1, /*epoch=*/4));  // parity 0
  comm.send(0, 1, basic(2, /*epoch=*/5));  // parity 1
  comm.send(0, 1, basic(3, /*epoch=*/5));
  EXPECT_EQ(comm.in_flight(0), 1);
  EXPECT_EQ(comm.in_flight(1), 2);
  EXPECT_EQ(comm.in_flight_total(), 3);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight(1), 1);
  comm.note_processed(4);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, ControlMessagesAreNotAccounted) {
  Comm comm(2);
  comm.send(0, 1, control());
  EXPECT_EQ(comm.in_flight_total(), 0);
  comm.flush(0);
  std::vector<Visitor> out;
  EXPECT_TRUE(comm.mailbox(1).drain(out));
}

TEST(Comm, InjectedEventsPairWithProcessed) {
  Comm comm(1);
  comm.note_injected(0);
  comm.note_injected(1);
  EXPECT_EQ(comm.in_flight_total(), 2);
  comm.note_processed(0);
  comm.note_processed(1);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, FifoAcrossFlushes) {
  Comm comm(2, /*batch_size=*/3);
  for (int i = 0; i < 10; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].target,
                                         static_cast<VertexId>(i));
}

TEST(Comm, SelfSendTakesLoopbackFastPath) {
  Comm comm(1);
  comm.send(0, 0, basic(9));
  // The loop-back queue bypasses the send buffers and the mailbox entirely.
  EXPECT_FALSE(comm.has_buffered(0));
  EXPECT_TRUE(comm.mailbox(0).empty());
  EXPECT_TRUE(comm.local_pending(0));
  EXPECT_EQ(comm.in_flight_total(), 1);  // still accounted like any basic send

  std::vector<Visitor> out;
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 9u);
  EXPECT_FALSE(comm.local_pending(0));
  EXPECT_FALSE(comm.drain(0, out));  // now fully empty
}

TEST(Comm, DrainMergesMailboxAndLoopback) {
  Comm comm(2);
  comm.send(1, 0, basic(1));  // remote: buffered, then mailbox
  comm.flush(1);
  comm.send(0, 0, basic(2));  // loop-back
  comm.send(0, 0, basic(3));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 3u);
  // Mailbox content first, then the loop-back queue, each FIFO.
  EXPECT_EQ(out[0].target, 1u);
  EXPECT_EQ(out[1].target, 2u);
  EXPECT_EQ(out[2].target, 3u);
}

TEST(Comm, DrainReplacesOutput) {
  Comm comm(1);
  std::vector<Visitor> out(5, basic(0));
  EXPECT_FALSE(comm.drain(0, out));
  EXPECT_TRUE(out.empty());  // stale content cleared even when idle
  comm.send(0, 0, basic(7));
  out.assign(3, basic(0));
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 7u);
}

}  // namespace
}  // namespace remo::test
