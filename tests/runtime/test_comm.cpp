#include <gtest/gtest.h>

#include <vector>

#include "runtime/comm.hpp"

namespace remo::test {
namespace {

Visitor basic(VertexId target, std::uint16_t epoch = 0) {
  Visitor v{};
  v.target = target;
  v.kind = VisitKind::kUpdate;
  v.epoch = epoch;
  return v;
}

Visitor control() {
  Visitor v{};
  v.kind = VisitKind::kControl;
  return v;
}

TEST(Comm, SendBuffersUntilFlush) {
  Comm comm(2, /*batch_size=*/16);
  comm.send(0, 1, basic(42));
  EXPECT_TRUE(comm.has_buffered(0));
  EXPECT_TRUE(comm.mailbox(1).empty());  // not yet delivered
  EXPECT_EQ(comm.in_flight_total(), 1);  // but already accounted

  comm.flush(0);
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 42u);
}

TEST(Comm, BatchSizeTriggersAutoFlush) {
  Comm comm(2, /*batch_size=*/4);
  for (int i = 0; i < 4; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  // Hitting the batch size flushed automatically.
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  EXPECT_EQ(out.size(), 4u);
}

TEST(Comm, InFlightAccountingByEpochParity) {
  Comm comm(2);
  comm.send(0, 1, basic(1, /*epoch=*/4));  // parity 0
  comm.send(0, 1, basic(2, /*epoch=*/5));  // parity 1
  comm.send(0, 1, basic(3, /*epoch=*/5));
  EXPECT_EQ(comm.in_flight(0), 1);
  EXPECT_EQ(comm.in_flight(1), 2);
  EXPECT_EQ(comm.in_flight_total(), 3);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight(1), 1);
  comm.note_processed(4);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, ControlMessagesAreNotAccounted) {
  Comm comm(2);
  comm.send(0, 1, control());
  EXPECT_EQ(comm.in_flight_total(), 0);
  comm.flush(0);
  std::vector<Visitor> out;
  EXPECT_TRUE(comm.mailbox(1).drain(out));
}

TEST(Comm, InjectedEventsPairWithProcessed) {
  Comm comm(1);
  comm.note_injected(0);
  comm.note_injected(1);
  EXPECT_EQ(comm.in_flight_total(), 2);
  comm.note_processed(0);
  comm.note_processed(1);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, FifoAcrossFlushes) {
  Comm comm(2, /*batch_size=*/3);
  for (int i = 0; i < 10; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].target,
                                         static_cast<VertexId>(i));
}

TEST(Comm, SelfSendTakesLoopbackFastPath) {
  Comm comm(1);
  comm.send(0, 0, basic(9));
  // The loop-back queue bypasses the send buffers and the mailbox entirely.
  EXPECT_FALSE(comm.has_buffered(0));
  EXPECT_TRUE(comm.mailbox(0).empty());
  EXPECT_TRUE(comm.local_pending(0));
  EXPECT_EQ(comm.in_flight_total(), 1);  // still accounted like any basic send

  std::vector<Visitor> out;
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 9u);
  EXPECT_FALSE(comm.local_pending(0));
  EXPECT_FALSE(comm.drain(0, out));  // now fully empty
}

TEST(Comm, DrainMergesMailboxAndLoopback) {
  Comm comm(2);
  comm.send(1, 0, basic(1));  // remote: buffered, then mailbox
  comm.flush(1);
  comm.send(0, 0, basic(2));  // loop-back
  comm.send(0, 0, basic(3));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 3u);
  // Mailbox content first, then the loop-back queue, each FIFO.
  EXPECT_EQ(out[0].target, 1u);
  EXPECT_EQ(out[1].target, 2u);
  EXPECT_EQ(out[2].target, 3u);
}

TEST(Comm, DrainReplacesOutput) {
  Comm comm(1);
  std::vector<Visitor> out(5, basic(0));
  EXPECT_FALSE(comm.drain(0, out));
  EXPECT_TRUE(out.empty());  // stale content cleared even when idle
  comm.send(0, 0, basic(7));
  out.assign(3, basic(0));
  ASSERT_TRUE(comm.drain(0, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 7u);
}

// ---------------------------------------------------------------------------
// Coalescing index + sharded accounting (DESIGN.md §6).

StateWord min_combine(const void*, StateWord a, StateWord b) {
  return a < b ? a : b;
}

Visitor update(VertexId target, VertexId other, StateWord value,
               std::uint16_t epoch = 0, std::uint8_t algo = 1) {
  Visitor v{};
  v.target = target;
  v.other = other;
  v.value = value;
  v.kind = VisitKind::kUpdate;
  v.epoch = epoch;
  v.algo = algo;
  return v;
}

TEST(CommCoalesce, SameKeyUpdatesMergeInTheSendBuffer) {
  Comm comm(2, /*batch_size=*/16);
  comm.register_combiner(1, nullptr, min_combine);
  EXPECT_TRUE(comm.has_combiners());

  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10)));  // first: buffered
  EXPECT_TRUE(comm.send(0, 1, update(7, 3, 4)));    // merged away
  EXPECT_TRUE(comm.send(0, 1, update(7, 3, 9)));    // merged (dominated)
  // A coalesced visitor never existed for accounting purposes.
  EXPECT_EQ(comm.in_flight_total(), 1);

  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 4u);  // min over the three offers
}

TEST(CommCoalesce, DistinctKeysNeverMerge) {
  Comm comm(2, /*batch_size=*/32);
  comm.register_combiner(1, nullptr, min_combine);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10)));
  EXPECT_FALSE(comm.send(0, 1, update(8, 3, 10)));  // different target
  EXPECT_FALSE(comm.send(0, 1, update(7, 4, 10)));  // different sender
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, /*epoch=*/1)));  // epoch
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, 0, /*algo=*/2)));  // program
  EXPECT_EQ(comm.in_flight_total(), 5);
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  EXPECT_EQ(out.size(), 5u);
}

TEST(CommCoalesce, FlushInvalidatesTheIndex) {
  // Same key across a flush boundary must NOT merge — the first copy is
  // already travelling.
  Comm comm(2, /*batch_size=*/16);
  comm.register_combiner(1, nullptr, min_combine);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10)));
  comm.flush(0);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 4)));  // fresh buffer: appended
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(comm.in_flight_total(), 2);
}

TEST(CommCoalesce, UnregisteredProgramsAndNonUpdatesPassThrough) {
  Comm comm(2, /*batch_size=*/16);
  comm.register_combiner(1, nullptr, min_combine);
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 10, 0, /*algo=*/5)));  // no hook
  EXPECT_FALSE(comm.send(0, 1, update(7, 3, 4, 0, /*algo=*/5)));
  Visitor add = update(7, 3, 1);
  add.kind = VisitKind::kAdd;  // topology events never coalesce
  EXPECT_FALSE(comm.send(0, 1, add));
  Visitor add2 = add;
  EXPECT_FALSE(comm.send(0, 1, add2));
  EXPECT_EQ(comm.in_flight_total(), 4);
}

TEST(CommCoalesce, SelfSendsSkipTheIndex) {
  Comm comm(2, /*batch_size=*/16);
  comm.register_combiner(1, nullptr, min_combine);
  EXPECT_FALSE(comm.send(0, 0, update(7, 3, 10)));
  EXPECT_FALSE(comm.send(0, 0, update(7, 3, 4)));  // loop-back: not merged
  EXPECT_EQ(comm.in_flight_total(), 2);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.drain(0, out));
  EXPECT_EQ(out.size(), 2u);
}

TEST(CommShards, RankShardsAndExternalShardSumGlobally) {
  Comm comm(3);
  comm.note_injected(0, /*shard=*/0);
  comm.note_injected(0, /*shard=*/2);
  comm.note_injected(0);  // external shard (main thread / tests)
  EXPECT_EQ(comm.in_flight(0), 3);
  // Processing may retire on any shard — the sums are global.
  comm.note_processed(0, /*shard=*/1);
  comm.note_processed(0, /*shard=*/2);
  comm.note_processed(0);
  EXPECT_EQ(comm.in_flight(0), 0);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(CommShards, ParitiesStaySeparatePerShard) {
  Comm comm(2);
  comm.note_injected(4, /*shard=*/0);   // parity 0
  comm.note_injected(5, /*shard=*/1);   // parity 1
  EXPECT_EQ(comm.in_flight(0), 1);
  EXPECT_EQ(comm.in_flight(1), 1);
  EXPECT_EQ(comm.in_flight_total(), 2);
  comm.note_processed(4, /*shard=*/1);  // cross-shard retirement
  EXPECT_EQ(comm.in_flight(0), 0);
  comm.note_processed(5, /*shard=*/0);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(CommDirty, FlushTouchesOnlyDirtyDestinations) {
  Comm comm(4, /*batch_size=*/16);
  comm.send(0, 2, basic(1));
  EXPECT_TRUE(comm.has_buffered(0));
  comm.flush(0);
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(2).drain(out));
  EXPECT_TRUE(comm.mailbox(1).empty());
  EXPECT_TRUE(comm.mailbox(3).empty());
  // Repeated flush with nothing dirty is a no-op (and cheap).
  comm.flush(0);
  EXPECT_FALSE(comm.mailbox(2).drain(out));
}

TEST(CommGauges, RingAndOverflowDepthsAreVisible) {
  Comm comm(2, /*batch_size=*/4, /*ring_capacity=*/8);
  for (int i = 0; i < 4; ++i)
    comm.send(0, 1, basic(static_cast<VertexId>(i)));  // auto-flush at 4
  EXPECT_EQ(comm.ring_depth(1), 4u);
  EXPECT_EQ(comm.overflow_depth(1), 0u);
  for (int i = 0; i < 8; ++i)
    comm.send(0, 1, basic(static_cast<VertexId>(i)));  // two more batches
  // Ring capacity 8: the third batch spilled.
  EXPECT_GT(comm.overflow_depth(1), 0u);
  EXPECT_GT(comm.overflows(1), 0u);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 12u);
  // FIFO across the spill: 0..3 (first batch), then 0..7 again.
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].target, static_cast<VertexId>(i < 4 ? i : i - 4));
}

}  // namespace
}  // namespace remo::test
