#include <gtest/gtest.h>

#include <vector>

#include "runtime/comm.hpp"

namespace remo::test {
namespace {

Visitor basic(VertexId target, std::uint16_t epoch = 0) {
  Visitor v{};
  v.target = target;
  v.kind = VisitKind::kUpdate;
  v.epoch = epoch;
  return v;
}

Visitor control() {
  Visitor v{};
  v.kind = VisitKind::kControl;
  return v;
}

TEST(Comm, SendBuffersUntilFlush) {
  Comm comm(2, /*batch_size=*/16);
  comm.send(0, 1, basic(42));
  EXPECT_TRUE(comm.has_buffered(0));
  EXPECT_TRUE(comm.mailbox(1).empty());  // not yet delivered
  EXPECT_EQ(comm.in_flight_total(), 1);  // but already accounted

  comm.flush(0);
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].target, 42u);
}

TEST(Comm, BatchSizeTriggersAutoFlush) {
  Comm comm(2, /*batch_size=*/4);
  for (int i = 0; i < 4; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  // Hitting the batch size flushed automatically.
  EXPECT_FALSE(comm.has_buffered(0));
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  EXPECT_EQ(out.size(), 4u);
}

TEST(Comm, InFlightAccountingByEpochParity) {
  Comm comm(2);
  comm.send(0, 1, basic(1, /*epoch=*/4));  // parity 0
  comm.send(0, 1, basic(2, /*epoch=*/5));  // parity 1
  comm.send(0, 1, basic(3, /*epoch=*/5));
  EXPECT_EQ(comm.in_flight(0), 1);
  EXPECT_EQ(comm.in_flight(1), 2);
  EXPECT_EQ(comm.in_flight_total(), 3);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight(1), 1);
  comm.note_processed(4);
  comm.note_processed(5);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, ControlMessagesAreNotAccounted) {
  Comm comm(2);
  comm.send(0, 1, control());
  EXPECT_EQ(comm.in_flight_total(), 0);
  comm.flush(0);
  std::vector<Visitor> out;
  EXPECT_TRUE(comm.mailbox(1).drain(out));
}

TEST(Comm, InjectedEventsPairWithProcessed) {
  Comm comm(1);
  comm.note_injected(0);
  comm.note_injected(1);
  EXPECT_EQ(comm.in_flight_total(), 2);
  comm.note_processed(0);
  comm.note_processed(1);
  EXPECT_EQ(comm.in_flight_total(), 0);
}

TEST(Comm, FifoAcrossFlushes) {
  Comm comm(2, /*batch_size=*/3);
  for (int i = 0; i < 10; ++i) comm.send(0, 1, basic(static_cast<VertexId>(i)));
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(1).drain(out));
  ASSERT_EQ(out.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)].target,
                                         static_cast<VertexId>(i));
}

TEST(Comm, SelfSendDeliversToOwnMailbox) {
  Comm comm(1);
  comm.send(0, 0, basic(9));
  comm.flush(0);
  std::vector<Visitor> out;
  ASSERT_TRUE(comm.mailbox(0).drain(out));
  EXPECT_EQ(out[0].target, 9u);
}

}  // namespace
}  // namespace remo::test
