#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"

namespace remo::test {
namespace {

Visitor make_visitor(VertexId target, StateWord value) {
  Visitor v{};
  v.target = target;
  v.value = value;
  return v;
}

TEST(Mailbox, DrainReturnsPushedBatches) {
  Mailbox box;
  EXPECT_TRUE(box.empty());
  std::vector<Visitor> out;
  EXPECT_FALSE(box.drain(out));

  const Visitor a = make_visitor(1, 10);
  const Visitor b = make_visitor(2, 20);
  const Visitor batch[] = {a, b};
  box.push(batch);
  EXPECT_FALSE(box.empty());
  ASSERT_TRUE(box.drain(out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].target, 1u);
  EXPECT_EQ(out[1].target, 2u);
  EXPECT_TRUE(box.empty());
}

TEST(Mailbox, PerProducerFifoOrder) {
  Mailbox box;
  std::thread producer([&] {
    for (StateWord i = 0; i < 10000; ++i) box.push_one(make_visitor(0, i));
  });
  StateWord expect = 0;
  std::vector<Visitor> out;
  while (expect < 10000) {
    if (!box.drain(out)) {
      std::this_thread::yield();
      continue;
    }
    for (const Visitor& v : out) {
      ASSERT_EQ(v.value, expect);
      ++expect;
    }
  }
  producer.join();
}

TEST(Mailbox, TwoProducersInterleaveButStayOrdered) {
  Mailbox box;
  auto produce = [&](VertexId id) {
    for (StateWord i = 0; i < 5000; ++i) box.push_one(make_visitor(id, i));
  };
  std::thread p1(produce, 1), p2(produce, 2);
  StateWord next1 = 0, next2 = 0;
  std::vector<Visitor> out;
  while (next1 < 5000 || next2 < 5000) {
    if (!box.drain(out)) {
      std::this_thread::yield();
      continue;
    }
    for (const Visitor& v : out) {
      if (v.target == 1) {
        ASSERT_EQ(v.value, next1++);
      } else {
        ASSERT_EQ(v.value, next2++);
      }
    }
  }
  p1.join();
  p2.join();
}

TEST(Mailbox, WaitTimesOutWhenEmpty) {
  Mailbox box;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.wait(std::chrono::milliseconds(20)));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
}

TEST(Mailbox, WaitWakesOnPush) {
  Mailbox box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push_one(make_visitor(7, 7));
  });
  EXPECT_TRUE(box.wait(std::chrono::seconds(5)));
  producer.join();
}

TEST(Mailbox, InterruptWakesWithoutMessage) {
  Mailbox box;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.interrupt();
  });
  // Returns false (still empty) but well before the 5 s timeout.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.wait(std::chrono::seconds(5)));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
  waker.join();
}

}  // namespace
}  // namespace remo::test
