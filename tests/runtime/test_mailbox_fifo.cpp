// Satellite regression for the ring/overflow ordering contract: hammer a
// tiny-ring mailbox from several producers with sequence-numbered visitors
// while the consumer drains concurrently, and verify (a) per-producer FIFO
// survives every ring->overflow->ring transition, (b) nothing is lost or
// duplicated, (c) the drain-loop sequence check never fires.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"

namespace remo::test {
namespace {

// Sequence number packed into the visitor: `other` carries the producer,
// `value` the per-producer sequence.
Visitor stamped(RankId producer, std::uint64_t seq) {
  Visitor v{};
  v.target = seq;  // arbitrary payload
  v.other = producer;
  v.value = seq;
  v.kind = VisitKind::kUpdate;
  return v;
}

TEST(MailboxFifo, SpillStressPreservesPerProducerOrder) {
  constexpr RankId kProducers = 4;
  constexpr std::uint64_t kPerProducer = 50'000;
  // Ring capacity 8: almost every burst spills, so the sticky-flag path and
  // its drain-side re-pop run continuously rather than in a corner case.
  Mailbox box(kProducers, /*ring_capacity=*/8);

  std::atomic<bool> go{false};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (RankId p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      while (!go.load(std::memory_order_acquire)) {
      }
      std::uint64_t seq = 0;
      Visitor batch[7];  // deliberately not a divisor of the ring size
      while (seq < kPerProducer) {
        std::size_t n = 0;
        for (; n < 7 && seq < kPerProducer; ++n) batch[n] = stamped(p, seq++);
        box.push_from(p, std::span<const Visitor>{batch, n});
      }
    });
  }

  std::vector<std::uint64_t> next_seq(kProducers, 0);
  std::uint64_t total = 0;
  std::vector<Visitor> out;
  go.store(true, std::memory_order_release);
  while (total < kProducers * kPerProducer) {
    if (!box.drain(out)) continue;
    for (const Visitor& v : out) {
      const auto p = static_cast<std::size_t>(v.other);
      ASSERT_EQ(v.value, next_seq[p])
          << "producer " << p << " out of order at visitor " << total;
      ++next_seq[p];
    }
    total += out.size();
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(total, kProducers * kPerProducer);
  EXPECT_FALSE(box.drain(out));
  EXPECT_GT(box.overflows(), 0u) << "ring never spilled: stress too weak";
  EXPECT_EQ(box.fifo_violations(), 0u);
}

TEST(MailboxFifo, MixedRingAndRinglessProducersStayOrdered) {
  // One ring producer interleaved with main-thread push() traffic; both
  // orders must hold independently.
  Mailbox box(1, /*ring_capacity=*/8);
  std::atomic<bool> go{false};
  std::thread ring_producer([&] {
    while (!go.load(std::memory_order_acquire)) {
    }
    for (std::uint64_t seq = 0; seq < 20'000; ++seq) {
      const Visitor v = stamped(0, seq);
      box.push_from(0, std::span<const Visitor>{&v, 1});
    }
  });

  std::uint64_t next_ring = 0, next_main = 0, pushed_main = 0, total = 0;
  std::vector<Visitor> out;
  go.store(true, std::memory_order_release);
  while (total < 40'000) {
    if (pushed_main < 20'000) box.push_one(stamped(1, pushed_main++));
    if (!box.drain(out)) continue;
    for (const Visitor& v : out) {
      std::uint64_t& next = v.other == 0 ? next_ring : next_main;
      ASSERT_EQ(v.value, next);
      ++next;
    }
    total += out.size();
  }
  ring_producer.join();
  EXPECT_EQ(next_ring, 20'000u);
  EXPECT_EQ(next_main, 20'000u);
  EXPECT_EQ(box.fifo_violations(), 0u);
}

}  // namespace
}  // namespace remo::test
