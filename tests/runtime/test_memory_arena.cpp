// Memory plane (runtime/memory.hpp): arena alignment guarantees, growth
// on exhaustion, huge-page fallback tiers, allocator propagation through
// container moves, storage-over-arena parity with the heap, and the
// teardown ordering contract (arena outlives every container; ASan is the
// judge on the sanitizer CI lane).
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "runtime/memory.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo::test {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

ArenaConfig small_config() {
  ArenaConfig cfg;
  cfg.chunk_bytes = 2 * kMiB;  // smallest legal chunk: exercises growth fast
  cfg.use_huge_pages = false;  // deterministic on hosts without hugepages
  return cfg;
}

TEST(Arena, RespectsAlignment) {
  Arena arena(small_config());
  for (const std::size_t align : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}, std::size_t{4096}}) {
    // Odd-sized requests force the bump pointer off alignment between calls.
    void* a = arena.allocate(13, align);
    void* b = arena.allocate(7, align);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % align, 0u) << align;
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % align, 0u) << align;
    EXPECT_NE(a, b);
  }
}

TEST(Arena, GrowsOnExhaustion) {
  Arena arena(small_config());
  const std::size_t first_reserved = arena.reserved_bytes();
  EXPECT_GE(first_reserved, 2 * kMiB);  // first chunk mapped eagerly
  // Overflow the first chunk with many sub-chunk allocations.
  for (int i = 0; i < 40; ++i) ASSERT_NE(arena.allocate(128 * 1024, 64), nullptr);
  EXPECT_GT(arena.reserved_bytes(), first_reserved);
  EXPECT_GE(arena.allocated_bytes(), 40 * 128 * 1024u);
  EXPECT_LE(arena.allocated_bytes(), arena.reserved_bytes());
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(small_config());
  // 3x the chunk size cannot fit any normal chunk; the arena must map a
  // dedicated one rather than fail.
  void* p = arena.allocate(6 * kMiB, 64);
  ASSERT_NE(p, nullptr);
  EXPECT_GE(arena.reserved_bytes(), 8 * kMiB);  // eager chunk + dedicated
  // The mapping is writable end to end.
  auto* bytes = static_cast<unsigned char*>(p);
  bytes[0] = 1;
  bytes[6 * kMiB - 1] = 2;
  EXPECT_EQ(bytes[0] + bytes[6 * kMiB - 1], 3);
}

TEST(Arena, HugePageFallbackIsExplicitNeverFatal) {
  // With huge pages requested the arena must still construct and serve
  // allocations no matter what tier the host supports; the achieved tier is
  // reported, not hidden. (On hosts with nr_hugepages=0 this lands on kThp
  // or kPlain — the degradation path CI exercises.)
  ArenaConfig cfg;
  cfg.chunk_bytes = 2 * kMiB;
  cfg.use_huge_pages = true;
  Arena arena(cfg);
  ASSERT_NE(arena.allocate(1024, 64), nullptr);
  const PageBacking got = arena.backing();
  EXPECT_TRUE(got == PageBacking::kExplicitHuge || got == PageBacking::kThp ||
              got == PageBacking::kPlain || got == PageBacking::kHeap);
  EXPECT_STRNE(page_backing_name(got), "");
}

TEST(Arena, HugePagesOffSkipsHugeTiers) {
  Arena arena(small_config());
  ASSERT_NE(arena.allocate(64, 8), nullptr);
  EXPECT_TRUE(arena.backing() == PageBacking::kPlain ||
              arena.backing() == PageBacking::kHeap);
}

TEST(Arena, FreeListRecyclesClassSizedBlocks) {
  // Vector-growth churn must not consume fresh arena space forever: a
  // freed power-of-two block comes straight back on the next same-class
  // allocation (same pointer, no new reservation).
  Arena arena(small_config());
  void* a = arena.allocate(1024, 64);
  ASSERT_NE(a, nullptr);
  arena.deallocate(a, 1024, 64);
  void* b = arena.allocate(900, 8);  // same 1 KiB class, laxer alignment
  EXPECT_EQ(b, a);
  const std::size_t reserved = arena.reserved_bytes();
  // Alloc/free cycles at one size must not grow the reservation.
  for (int i = 0; i < 10000; ++i) {
    void* p = arena.allocate(4096, 64);
    ASSERT_NE(p, nullptr);
    arena.deallocate(p, 4096, 64);
  }
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(Arena, OverAlignedFreesSkipTheFreeList) {
  // A block freed with > 4 KiB alignment cannot be recycled (a reused
  // block only guarantees min(class, 4 KiB) alignment) — the next
  // allocation must come from fresh space, never a misaligned reuse.
  Arena arena(small_config());
  void* a = arena.allocate(1 << 16, 1 << 14);
  ASSERT_NE(a, nullptr);
  arena.deallocate(a, 1 << 16, 1 << 14);
  void* b = arena.allocate(1 << 16, 1 << 14);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(b, a);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % (1 << 14), 0u);
}

TEST(ArenaAllocator, NullArenaIsPlainHeap) {
  // The default-constructed allocator must behave exactly like std::allocator
  // — this is what every container in a non-arena engine uses.
  std::vector<int, ArenaAllocator<int>> v;
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  EXPECT_EQ(v[9999], 9999);
  EXPECT_TRUE(v.get_allocator() == ArenaAllocator<int>());
}

TEST(ArenaAllocator, PropagatesThroughContainerMoves) {
  Arena arena(small_config());
  const ArenaAllocator<int> alloc(&arena);
  std::vector<int, ArenaAllocator<int>> src(alloc);
  for (int i = 0; i < 1000; ++i) src.push_back(i);
  const int* data = src.data();
  // POCMA: the move-assign steals the buffer (and the allocator) in O(1) —
  // this is what keeps RobinHoodMap::rehash cheap.
  std::vector<int, ArenaAllocator<int>> dst;
  dst = std::move(src);
  EXPECT_EQ(dst.data(), data);
  EXPECT_EQ(dst.get_allocator().arena(), &arena);
  EXPECT_EQ(dst[999], 999);
}

TEST(RobinHoodMapArena, RehashStaysInsideArena) {
  Arena arena(small_config());
  RobinHoodMap<std::uint64_t, std::uint64_t> map(&arena);
  EXPECT_EQ(map.arena(), &arena);
  const std::size_t before = arena.allocated_bytes();
  // Enough inserts to force several rehash cycles.
  for (std::uint64_t k = 0; k < 20000; ++k) map.insert_or_assign(k, k * 3);
  EXPECT_GT(arena.allocated_bytes(), before);
  for (std::uint64_t k = 0; k < 20000; ++k) {
    const std::uint64_t* v = map.find(k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k * 3);
  }
}

TEST(DegAwareStoreArena, ParityWithHeapStore) {
  // The same edge workload through an arena-backed store and a heap store
  // must produce identical observable state — the allocator is invisible
  // to storage semantics.
  Arena arena(small_config());
  StoreConfig cfg;
  cfg.promote_threshold = 3;  // both adjacency tiers in play
  DegAwareStore on_arena(cfg, &arena);
  DegAwareStore on_heap(cfg);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const VertexId u = i % 97, v = (i * 31) % 89;
    const Weight w = static_cast<Weight>(1 + i % 7);
    on_arena.insert_edge(u, v, w);
    on_heap.insert_edge(u, v, w);
    if (i % 5 == 0) {
      on_arena.erase_edge(v, u);
      on_heap.erase_edge(v, u);
    }
  }
  ASSERT_EQ(on_arena.edge_count(), on_heap.edge_count());
  ASSERT_EQ(on_arena.vertex_count(), on_heap.vertex_count());
  on_heap.for_each_vertex([&](const VertexId& u, const TwoTierAdjacency&) {
    ASSERT_EQ(on_arena.degree(u), on_heap.degree(u)) << u;
  });
}

TEST(DegAwareStoreArena, GenerationCountersSurviveArenaBacking) {
  // The ingest hot path holds adjacency handles across calls guarded by
  // generation(); arena-backed rehashes must bump it exactly like heap ones.
  Arena arena(small_config());
  DegAwareStore store(StoreConfig{}, &arena);
  store.insert_edge(1, 2, 1);
  const auto g0 = store.generation();
  // Distinct source vertices grow the vertex map until it rehashes.
  for (std::uint64_t v = 3; v < 3000; ++v) store.insert_edge(v, 1, 1);
  EXPECT_GT(store.generation(), g0);
  EXPECT_EQ(store.vertex_count(), 2998u);
  EXPECT_EQ(store.degree(1), 1u);
}

TEST(TeardownOrdering, StoreDiesBeforeArena) {
  // The engine's contract: containers first, arena last. A violation is an
  // ASan use-after-free on the sanitizer lane; here we at least assert the
  // scoped ordering runs clean and the arena keeps its accounting.
  Arena arena(small_config());
  {
    DegAwareStore store(StoreConfig{}, &arena);
    for (std::uint64_t i = 0; i < 2000; ++i)
      store.insert_edge(i % 50, (i * 7) % 50, 1);
  }
  // Frees went to the arena's free lists, not back to the OS;
  // allocated_bytes counts cumulative traffic and stays put.
  EXPECT_GT(arena.allocated_bytes(), 0u);
  ASSERT_NE(arena.allocate(64, 8), nullptr);  // still serviceable
}

TEST(MemoryPlane, OffByDefaultYieldsNullArenas) {
  MemoryPlane plane(MemoryConfig{}, PinningMode::kNone, 4);
  for (RankId r = 0; r < 4; ++r) EXPECT_EQ(plane.rank_arena(r), nullptr);
  const Json j = plane.to_json();
  ASSERT_NE(j.find("arenas"), nullptr);
  EXPECT_FALSE(j.find("arenas")->as_bool());
}

TEST(MemoryPlane, ArenasOnGivesEveryRankAnArena) {
  MemoryConfig cfg;
  cfg.arenas = true;
  cfg.huge_pages = false;
  cfg.arena_chunk_bytes = 2 * kMiB;
  MemoryPlane plane(cfg, PinningMode::kCompact, 3);
  for (RankId r = 0; r < 3; ++r) {
    Arena* a = plane.rank_arena(r);
    ASSERT_NE(a, nullptr) << r;
    EXPECT_NE(plane.rank_arena(r)->allocate(256, 64), nullptr);
  }
  // Distinct arenas per rank (locality is per-rank by construction).
  EXPECT_NE(plane.rank_arena(0), plane.rank_arena(1));
  const Json j = plane.to_json();
  ASSERT_NE(j.find("page_backing"), nullptr);
  ASSERT_NE(j.find("rank_slots"), nullptr);
  EXPECT_EQ(j.find("rank_slots")->size(), 3u);
}

TEST(MemoryPlane, DegradationIsExplicit) {
  // Whatever this host lacks (hugepages, NUMA, enough CPUs), a degraded
  // plane must say why; a non-degraded plane must stay silent.
  MemoryConfig cfg;
  cfg.arenas = true;
  MemoryPlane plane(cfg, PinningMode::kCompact, 64);  // 64 ranks: wrap likely
  if (plane.degraded())
    EXPECT_FALSE(plane.degradation_note().empty());
  else
    EXPECT_TRUE(plane.degradation_note().empty());
  plane.print_banner_once();  // must not crash; prints at most once
  plane.print_banner_once();
}

}  // namespace
}  // namespace remo::test
