#include <gtest/gtest.h>

#include <vector>

#include "runtime/partitioner.hpp"

namespace remo::test {
namespace {

TEST(Partitioner, OwnerIsStableAndInRange) {
  const Partitioner p(7);
  for (VertexId v = 0; v < 10000; ++v) {
    const RankId o = p.owner(v);
    EXPECT_LT(o, 7u);
    EXPECT_EQ(o, p.owner(v));  // pure function
  }
}

TEST(Partitioner, EveryProcessComputesTheSameOwner) {
  // Consistent hashing's point (Section III-C): any rank can route any
  // event with no coordination. Two independent partitioner instances
  // stand in for two processes.
  const Partitioner a(5), b(5);
  for (VertexId v = 0; v < 1000; ++v) EXPECT_EQ(a.owner(v), b.owner(v));
}

TEST(Partitioner, BalancedOverSequentialIds) {
  const Partitioner p(4);
  std::vector<std::uint64_t> counts(4, 0);
  const std::uint64_t n = 100000;
  for (VertexId v = 0; v < n; ++v) ++counts[p.owner(v)];
  for (const std::uint64_t c : counts) {
    EXPECT_GT(c, n / 4 * 0.95);
    EXPECT_LT(c, n / 4 * 1.05);
  }
}

TEST(Partitioner, SingleRankOwnsEverything) {
  const Partitioner p(1);
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(p.owner(v), 0u);
}

}  // namespace
}  // namespace remo::test
