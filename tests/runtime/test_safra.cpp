// SafraRing unit tests: the EWD-998 state machine driven by a simulated
// ring (no engine, no threads) — termination is declared iff no messages
// are outstanding.
#include <gtest/gtest.h>

#include "runtime/safra.hpp"

namespace remo::test {
namespace {

// Simulated ring driver. After a kRestart the probe stays active and the
// (whitened) token circulates again — mirroring how the engine forwards a
// restarted token rather than re-initiating. The driver keeps that state
// across calls.
struct RingDriver {
  explicit RingDriver(SafraRing& r) : ring(r) {}

  // Circulate the token once around an all-passive ring; true when rank 0
  // concluded termination.
  bool run_probe() {
    if (!active) {
      EXPECT_TRUE(ring.start_probe(0));
      tok = SafraRing::Token{};
      active = true;
    }
    // Token visits N-1, N-2, ..., 1, then returns to 0.
    for (RankId r = ring.size() - 1; r >= 1; --r) {
      EXPECT_EQ(ring.on_token(r, tok), SafraRing::TokenAction::kForward);
      if (r == 1) break;
    }
    const auto action = ring.on_token(0, tok);
    if (action == SafraRing::TokenAction::kTerminated) {
      active = false;
      return true;
    }
    EXPECT_EQ(action, SafraRing::TokenAction::kRestart);
    return false;
  }

  SafraRing& ring;
  SafraRing::Token tok{};
  bool active = false;
};

TEST(Safra, CleanRingTerminatesFirstProbe) {
  SafraRing ring(4);
  RingDriver drv(ring);
  EXPECT_TRUE(drv.run_probe());
  EXPECT_TRUE(ring.terminated());
}

TEST(Safra, OutstandingMessageBlocksTermination) {
  SafraRing ring(3);
  RingDriver drv(ring);
  ring.on_basic_send(1);  // rank 1 sent, nobody received
  EXPECT_FALSE(drv.run_probe());
  EXPECT_FALSE(ring.terminated());
  // The message arrives: counts settle, but the receiver is black.
  ring.on_basic_receive(2);
  EXPECT_FALSE(drv.run_probe());  // black receiver dirties this probe
  EXPECT_TRUE(drv.run_probe());   // clean second probe concludes
}

TEST(Safra, BlackTokenForcesSecondProbe) {
  SafraRing ring(2);
  RingDriver drv(ring);
  ring.on_basic_send(0);
  ring.on_basic_receive(1);  // rank 1 is black now
  EXPECT_FALSE(drv.run_probe());
  EXPECT_TRUE(drv.run_probe());
}

TEST(Safra, SingleProbeActiveAtATime) {
  SafraRing ring(2);
  EXPECT_TRUE(ring.start_probe(0));
  EXPECT_FALSE(ring.start_probe(0));  // already circulating
  EXPECT_FALSE(ring.start_probe(1));  // only rank 0 initiates
}

TEST(Safra, RearmInvalidatesGenerationAndTerminatedFlag) {
  SafraRing ring(2);
  RingDriver drv(ring);
  EXPECT_TRUE(drv.run_probe());
  const std::uint64_t gen = ring.generation();
  ring.rearm();
  EXPECT_FALSE(ring.terminated());
  EXPECT_EQ(ring.generation(), gen + 1);
  // Fresh probe succeeds again on the clean ring.
  EXPECT_TRUE(drv.run_probe());
}

TEST(Safra, CountsPersistAcrossRearm) {
  SafraRing ring(2);
  RingDriver drv(ring);
  ring.on_basic_send(0);  // in flight across the phase boundary
  ring.rearm();
  EXPECT_FALSE(drv.run_probe());
  ring.on_basic_receive(1);
  EXPECT_FALSE(drv.run_probe());  // blackened by the late receive
  EXPECT_TRUE(drv.run_probe());
}

TEST(Safra, NextWrapsTheRing) {
  SafraRing ring(4);
  EXPECT_EQ(ring.next(0), 3u);
  EXPECT_EQ(ring.next(3), 2u);
  EXPECT_EQ(ring.next(1), 0u);
}

TEST(Safra, ManyMessagesNetZeroStillNeedsWhiteProbe) {
  SafraRing ring(3);
  for (int i = 0; i < 100; ++i) {
    ring.on_basic_send(0);
    ring.on_basic_receive(1);
    ring.on_basic_send(1);
    ring.on_basic_receive(2);
  }
  // Counts sum to zero but colours are dirty: first probe must fail.
  RingDriver drv(ring);
  EXPECT_FALSE(drv.run_probe());
  EXPECT_TRUE(drv.run_probe());
}

}  // namespace
}  // namespace remo::test
