// The SPSC-ring fast path of Mailbox: per-producer FIFO across the
// ring/overflow boundary, the sticky spill protocol, the eventcount
// parking handshake, and the occupancy/overflow accessors the gauges and
// counters read. These are the lock-free paths the engine's rank threads
// exercise; the multi-threaded tests here are the TSan targets for them.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/mailbox.hpp"

namespace remo::test {
namespace {

Visitor tagged(VertexId producer, StateWord seq) {
  Visitor v{};
  v.target = producer;
  v.value = seq;
  return v;
}

std::vector<Visitor> batch_of(VertexId producer, StateWord first, std::size_t n) {
  std::vector<Visitor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(tagged(producer, first + static_cast<StateWord>(i)));
  return out;
}

TEST(SpscMailbox, RingPathDeliversInOrderWithoutSpilling) {
  Mailbox box(/*producers=*/1, /*ring_capacity=*/64);
  EXPECT_EQ(box.producers(), 1u);
  box.push_from(0, batch_of(0, 0, 10));
  box.push_from(0, batch_of(0, 10, 10));
  EXPECT_EQ(box.ring_depth(), 20u);
  EXPECT_EQ(box.overflow_depth(), 0u);
  EXPECT_EQ(box.overflows(), 0u);
  EXPECT_EQ(box.approx_depth(), 20u);

  std::vector<Visitor> out;
  ASSERT_TRUE(box.drain(out));
  ASSERT_EQ(out.size(), 20u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].value, i);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.overflows(), 0u);  // everything fit in the ring
}

TEST(SpscMailbox, SpillPreservesFifoAcrossRingOverflowBoundary) {
  // Capacity 8: a 20-visitor batch fills the ring and spills 12.
  Mailbox box(/*producers=*/1, /*ring_capacity=*/8);
  box.push_from(0, batch_of(0, 0, 20));
  EXPECT_EQ(box.ring_depth(), 8u);
  EXPECT_EQ(box.overflow_depth(), 12u);
  EXPECT_EQ(box.overflows(), 12u);
  EXPECT_EQ(box.approx_depth(), 20u);

  // Sticky spill: the ring has no room anyway, but even after the consumer
  // would make room, a spilled producer keeps appending to overflow until
  // a drain clears the flag — so this batch lands entirely in overflow.
  box.push_from(0, batch_of(0, 20, 5));
  EXPECT_EQ(box.ring_depth(), 8u);
  EXPECT_EQ(box.overflow_depth(), 17u);

  std::vector<Visitor> out;
  ASSERT_TRUE(box.drain(out));
  ASSERT_EQ(out.size(), 25u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i].value, i) << "FIFO hole at " << i;
  EXPECT_TRUE(box.empty());
}

TEST(SpscMailbox, RingResumesAfterDrainClearsSpill) {
  Mailbox box(/*producers=*/1, /*ring_capacity=*/8);
  box.push_from(0, batch_of(0, 0, 20));  // spills
  std::vector<Visitor> out;
  ASSERT_TRUE(box.drain(out));  // clears the sticky flag under the mutex

  box.push_from(0, batch_of(0, 20, 4));  // fits: back on the lock-free path
  EXPECT_EQ(box.ring_depth(), 4u);
  EXPECT_EQ(box.overflow_depth(), 0u);
  ASSERT_TRUE(box.drain(out));
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].value, 20u);
  EXPECT_EQ(out[3].value, 23u);
}

TEST(SpscMailbox, RinglessPushersShareTheOverflowSegment) {
  // push()/push_one() (main thread, tests) always take the overflow path
  // and are not counted as ring overflows.
  Mailbox box(/*producers=*/2, /*ring_capacity=*/8);
  box.push_one(tagged(99, 0));
  box.push(batch_of(99, 1, 3));
  EXPECT_EQ(box.ring_depth(), 0u);
  EXPECT_EQ(box.overflow_depth(), 4u);
  EXPECT_EQ(box.overflows(), 0u);
  std::vector<Visitor> out;
  ASSERT_TRUE(box.drain(out));
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(out[i].value, i);
}

// The TSan stress target: ring producers pushing through constant spills,
// a ringless producer interleaving, and a concurrent consumer — per-producer
// FIFO must hold across every ring/overflow handoff.
TEST(SpscMailbox, ConcurrentProducersStayFifoUnderSpillPressure) {
  constexpr RankId kProducers = 4;
  constexpr StateWord kPerProducer = 8000;
  constexpr VertexId kMainTag = 1000;
  // Tiny rings force the spill path to run continuously.
  Mailbox box(kProducers, /*ring_capacity=*/16);

  std::vector<std::thread> threads;
  for (RankId p = 0; p < kProducers; ++p) {
    threads.emplace_back([&box, p] {
      StateWord next = 0;
      while (next < kPerProducer) {
        // Vary batch sizes so batches straddle the ring boundary at
        // different offsets.
        const std::size_t n =
            std::min<std::size_t>(1 + (next % 13), kPerProducer - next);
        box.push_from(p, batch_of(p, next, n));
        next += static_cast<StateWord>(n);
      }
    });
  }
  threads.emplace_back([&box] {
    for (StateWord i = 0; i < kPerProducer; ++i) box.push_one(tagged(kMainTag, i));
  });

  std::vector<StateWord> expect(kProducers + 1, 0);
  std::uint64_t received = 0;
  std::vector<Visitor> out;
  while (received < (kProducers + 1) * kPerProducer) {
    if (!box.drain(out)) {
      box.wait(std::chrono::milliseconds(100));
      continue;
    }
    received += out.size();
    for (const Visitor& v : out) {
      const std::size_t lane = v.target == kMainTag ? kProducers : v.target;
      ASSERT_EQ(v.value, expect[lane]) << "producer " << v.target;
      ++expect[lane];
    }
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(box.empty());
  EXPECT_GT(box.overflows(), 0u);  // the tiny rings really did spill
}

// Re-proof of the missed-wakeup window (DESIGN.md §6): ping-pong rounds
// where the consumer parks with a long timeout before every item. If the
// parked_/fence handshake had a hole, some round's push would land between
// the consumer's emptiness re-check and its park, nobody would signal the
// condvar, and that round would stall for the full 10 s timeout — tripping
// the per-round deadline below. The engine's own loop hides such bugs
// behind its 200 µs parking backstop; this test removes the backstop.
TEST(SpscMailbox, ParkingHandshakeHasNoMissedWakeupWindow) {
  constexpr int kRounds = 500;
  Mailbox box(/*producers=*/1, /*ring_capacity=*/8);
  std::atomic<int> acked{0};
  std::thread producer([&] {
    for (int i = 0; i < kRounds; ++i) {
      box.push_from(0, batch_of(0, static_cast<StateWord>(i), 1));
      while (acked.load(std::memory_order_acquire) <= i) std::this_thread::yield();
    }
  });
  std::vector<Visitor> out;
  for (int i = 0; i < kRounds; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    while (!box.drain(out)) {
      box.wait(std::chrono::seconds(10));
      ASSERT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(8))
          << "round " << i << " stalled: missed wakeup";
    }
    ASSERT_EQ(out.size(), 1u);
    ASSERT_EQ(out[0].value, static_cast<StateWord>(i));
    acked.store(i + 1, std::memory_order_release);
  }
  producer.join();
}

TEST(SpscMailbox, WaitWakesOnRingPush) {
  Mailbox box(/*producers=*/1, /*ring_capacity=*/64);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.push_from(0, batch_of(0, 7, 1));
  });
  EXPECT_TRUE(box.wait(std::chrono::seconds(5)));
  producer.join();
}

TEST(SpscMailbox, InterruptWakesRingedConsumerWithoutMessage) {
  Mailbox box(/*producers=*/2, /*ring_capacity=*/64);
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.interrupt();
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(box.wait(std::chrono::seconds(5)));  // still empty
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
  waker.join();
}

}  // namespace
}  // namespace remo::test
