// Topology discovery (runtime/topology.hpp): cpulist parsing, scripted
// sysfs fixture trees (single-node, two-node, offline-CPU holes), the
// no-NUMA degradation path, and pin-plan construction for every mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "runtime/topology.hpp"

namespace remo::test {
namespace {

namespace fs = std::filesystem;

/// Build a scripted sysfs tree under TempDir and return its root.
class SysfsFixture {
 public:
  explicit SysfsFixture(const char* name)
      : root_(std::string(::testing::TempDir()) + "/" + name) {
    fs::remove_all(root_);
    fs::create_directories(root_ + "/devices/system/node");
    fs::create_directories(root_ + "/devices/system/cpu");
  }
  ~SysfsFixture() { fs::remove_all(root_); }

  void write(const std::string& rel, const std::string& text) {
    const fs::path p = fs::path(root_) / rel;
    fs::create_directories(p.parent_path());
    std::ofstream(p) << text;
  }

  const std::string& root() const { return root_; }

 private:
  std::string root_;
};

TEST(ParseCpuList, RangesSinglesAndJunk) {
  EXPECT_EQ(parse_cpu_list("0-3,5,7-8\n"),
            (std::vector<int>{0, 1, 2, 3, 5, 7, 8}));
  EXPECT_EQ(parse_cpu_list("2"), (std::vector<int>{2}));
  EXPECT_EQ(parse_cpu_list(""), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("garbage"), (std::vector<int>{}));
  // Malformed chunks are skipped, valid ones kept.
  EXPECT_EQ(parse_cpu_list("0-2,x,4"), (std::vector<int>{0, 1, 2, 4}));
  // Reversed range and negatives are invalid.
  EXPECT_EQ(parse_cpu_list("5-3"), (std::vector<int>{}));
  EXPECT_EQ(parse_cpu_list("-1"), (std::vector<int>{}));
  // Duplicates collapse.
  EXPECT_EQ(parse_cpu_list("0,0,0-1"), (std::vector<int>{0, 1}));
}

TEST(ParsePinningMode, AllNamesAndRejects) {
  PinningMode m = PinningMode::kNone;
  EXPECT_TRUE(parse_pinning_mode("compact", &m));
  EXPECT_EQ(m, PinningMode::kCompact);
  EXPECT_TRUE(parse_pinning_mode("scatter", &m));
  EXPECT_EQ(m, PinningMode::kScatter);
  EXPECT_TRUE(parse_pinning_mode("numa-spread", &m));
  EXPECT_EQ(m, PinningMode::kNumaSpread);
  EXPECT_TRUE(parse_pinning_mode("numa_spread", &m));
  EXPECT_EQ(m, PinningMode::kNumaSpread);
  EXPECT_TRUE(parse_pinning_mode("none", &m));
  EXPECT_EQ(m, PinningMode::kNone);
  m = PinningMode::kScatter;
  EXPECT_FALSE(parse_pinning_mode("bogus", &m));
  EXPECT_EQ(m, PinningMode::kScatter);  // untouched on failure
  // Round trip through the printed names.
  for (const PinningMode mode :
       {PinningMode::kNone, PinningMode::kCompact, PinningMode::kScatter,
        PinningMode::kNumaSpread}) {
    PinningMode back = PinningMode::kNone;
    ASSERT_TRUE(parse_pinning_mode(pinning_mode_name(mode), &back));
    EXPECT_EQ(back, mode);
  }
}

TEST(TopologyFromSysfs, SingleNode) {
  SysfsFixture fix("sysfs_single");
  fix.write("devices/system/node/online", "0\n");
  fix.write("devices/system/node/node0/cpulist", "0-3\n");
  fix.write("devices/system/cpu/online", "0-3\n");
  const Topology t = Topology::from_sysfs(fix.root());
  EXPECT_FALSE(t.degraded);
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_EQ(t.nodes[0].id, 0);
  EXPECT_EQ(t.nodes[0].cpus, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(t.num_cpus(), 4);
  EXPECT_EQ(t.node_of_cpu(2), 0);
  EXPECT_EQ(t.node_of_cpu(9), -1);
}

TEST(TopologyFromSysfs, TwoNodes) {
  SysfsFixture fix("sysfs_two");
  fix.write("devices/system/node/online", "0-1\n");
  fix.write("devices/system/node/node0/cpulist", "0-3\n");
  fix.write("devices/system/node/node1/cpulist", "4-7\n");
  fix.write("devices/system/cpu/online", "0-7\n");
  const Topology t = Topology::from_sysfs(fix.root());
  EXPECT_FALSE(t.degraded);
  ASSERT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.num_cpus(), 8);
  EXPECT_EQ(t.node_of_cpu(3), 0);
  EXPECT_EQ(t.node_of_cpu(4), 1);
}

TEST(TopologyFromSysfs, OfflineCpuHolesAreExcluded) {
  // CPUs 2 and 5 are offline: they appear in the node cpulists but not in
  // cpu/online, and must never reach a pin plan.
  SysfsFixture fix("sysfs_holes");
  fix.write("devices/system/node/online", "0-1\n");
  fix.write("devices/system/node/node0/cpulist", "0-3\n");
  fix.write("devices/system/node/node1/cpulist", "4-7\n");
  fix.write("devices/system/cpu/online", "0-1,3-4,6-7\n");
  const Topology t = Topology::from_sysfs(fix.root());
  EXPECT_FALSE(t.degraded);
  ASSERT_EQ(t.nodes.size(), 2u);
  EXPECT_EQ(t.nodes[0].cpus, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(t.nodes[1].cpus, (std::vector<int>{4, 6, 7}));
  EXPECT_EQ(t.node_of_cpu(2), -1);
  EXPECT_EQ(t.node_of_cpu(5), -1);
}

TEST(TopologyFromSysfs, MemoryOnlyNodeKeptAsArenaTarget) {
  SysfsFixture fix("sysfs_memonly");
  fix.write("devices/system/node/online", "0-1\n");
  fix.write("devices/system/node/node0/cpulist", "0-1\n");
  fix.write("devices/system/node/node1/cpulist", "\n");  // CXL-style: no CPUs
  const Topology t = Topology::from_sysfs(fix.root());
  EXPECT_FALSE(t.degraded);
  ASSERT_EQ(t.nodes.size(), 2u);
  EXPECT_TRUE(t.nodes[1].cpus.empty());
  EXPECT_EQ(t.num_cpus(), 2);
}

TEST(TopologyFromSysfs, MissingTreeDegradesExplicitly) {
  SysfsFixture fix("sysfs_empty");  // dirs exist, no files
  const Topology t = Topology::from_sysfs(fix.root());
  EXPECT_TRUE(t.degraded);
  EXPECT_FALSE(t.note.empty());
  ASSERT_EQ(t.nodes.size(), 1u);  // single synthetic node
  EXPECT_GE(t.num_cpus(), 1);
}

TEST(TopologyDetect, AlwaysYieldsAtLeastOneCpu) {
  const Topology t = Topology::detect();
  EXPECT_GE(t.num_cpus(), 1);
  if (t.degraded) {
    EXPECT_FALSE(t.note.empty());
  }
}

Topology two_node_topo() {
  Topology t;
  t.nodes.push_back({0, {0, 1, 2, 3}});
  t.nodes.push_back({1, {4, 5, 6, 7}});
  return t;
}

TEST(PlanPinning, NoneAssignsNodesButNoCpus) {
  const PinPlan p = plan_pinning(two_node_topo(), PinningMode::kNone, 4);
  ASSERT_EQ(p.slots.size(), 4u);
  EXPECT_FALSE(p.degraded);
  for (const PinSlot& s : p.slots) EXPECT_EQ(s.cpu, -1);
  // Arena affinity still round-robins nodes under kNone.
  EXPECT_NE(p.slots[0].node, -1);
}

TEST(PlanPinning, CompactFillsNodeZeroFirst) {
  const PinPlan p = plan_pinning(two_node_topo(), PinningMode::kCompact, 6);
  ASSERT_EQ(p.slots.size(), 6u);
  EXPECT_FALSE(p.degraded);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.slots[r].cpu, r) << r;
    EXPECT_EQ(p.slots[r].node, 0) << r;
  }
  EXPECT_EQ(p.slots[4].cpu, 4);
  EXPECT_EQ(p.slots[4].node, 1);
  EXPECT_EQ(p.slots[5].cpu, 5);
}

TEST(PlanPinning, ScatterAlternatesNodes) {
  const PinPlan p = plan_pinning(two_node_topo(), PinningMode::kScatter, 4);
  ASSERT_EQ(p.slots.size(), 4u);
  EXPECT_EQ(p.slots[0].node, 0);
  EXPECT_EQ(p.slots[1].node, 1);
  EXPECT_EQ(p.slots[2].node, 0);
  EXPECT_EQ(p.slots[3].node, 1);
  EXPECT_EQ(p.slots[0].cpu, 0);
  EXPECT_EQ(p.slots[1].cpu, 4);
  EXPECT_EQ(p.slots[2].cpu, 1);
  EXPECT_EQ(p.slots[3].cpu, 5);
}

TEST(PlanPinning, NumaSpreadUsesDistinctCoresPerNode) {
  const PinPlan p = plan_pinning(two_node_topo(), PinningMode::kNumaSpread, 8);
  ASSERT_EQ(p.slots.size(), 8u);
  EXPECT_FALSE(p.degraded);
  // All 8 CPUs used exactly once before any reuse.
  std::vector<int> cpus;
  for (const PinSlot& s : p.slots) cpus.push_back(s.cpu);
  std::sort(cpus.begin(), cpus.end());
  EXPECT_EQ(cpus, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(PlanPinning, MoreRanksThanCpusWrapsAndDegrades) {
  const PinPlan p = plan_pinning(two_node_topo(), PinningMode::kCompact, 10);
  ASSERT_EQ(p.slots.size(), 10u);
  EXPECT_TRUE(p.degraded);
  EXPECT_NE(p.note.find("wrap"), std::string::npos);
  EXPECT_EQ(p.slots[8].cpu, p.slots[0].cpu);  // wrapped
  EXPECT_EQ(p.slots[9].cpu, p.slots[1].cpu);
}

TEST(PlanPinning, MemoryOnlyNodesNeverHostRanks) {
  Topology t;
  t.nodes.push_back({0, {0, 1}});
  t.nodes.push_back({1, {}});  // memory-only
  const PinPlan p = plan_pinning(t, PinningMode::kScatter, 2);
  for (const PinSlot& s : p.slots) EXPECT_EQ(s.node, 0);
}

TEST(PlanPinning, NoCpusDegradesToUnpinned) {
  Topology t;
  t.nodes.push_back({0, {}});
  const PinPlan p = plan_pinning(t, PinningMode::kCompact, 2);
  EXPECT_TRUE(p.degraded);
  EXPECT_FALSE(p.note.empty());
  for (const PinSlot& s : p.slots) EXPECT_EQ(s.cpu, -1);
}

TEST(PinCurrentThread, NegativeCpuRefusedGracefully) {
  EXPECT_FALSE(pin_current_thread(-1));
}

}  // namespace
}  // namespace remo::test
