// ConflictPartitioner unit suite: disjointness within a wave, per-key order
// across waves, canonical-pair keying, and the occupancy stats the WriteGate
// fallback decision reads (docs/SERVING.md "the write side").
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(ConflictPartitioner, EmptyBatch) {
  const WavePlan plan = ConflictPartitioner::plan_keys({});
  EXPECT_EQ(plan.num_waves(), 0u);
  EXPECT_TRUE(plan.order.empty());
  EXPECT_EQ(plan.mean_occupancy(), 0.0);
}

TEST(ConflictPartitioner, DistinctKeysFormOneWave) {
  const WavePlan plan = ConflictPartitioner::plan_keys({10, 20, 30, 40});
  ASSERT_EQ(plan.num_waves(), 1u);
  EXPECT_EQ(plan.wave_size(0), 4u);
  // Input order preserved inside the wave.
  EXPECT_EQ(plan.order, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(plan.mean_occupancy(), 4.0);
}

TEST(ConflictPartitioner, IdenticalKeysFullySerialise) {
  const WavePlan plan = ConflictPartitioner::plan_keys({7, 7, 7, 7, 7});
  ASSERT_EQ(plan.num_waves(), 5u);
  for (std::size_t w = 0; w < 5; ++w) {
    EXPECT_EQ(plan.wave_size(w), 1u);
    // Wave w holds exactly the w-th occurrence: submission order survives.
    EXPECT_EQ(plan.order[plan.wave_begin[w]], w);
  }
  EXPECT_EQ(plan.mean_occupancy(), 1.0);
}

TEST(ConflictPartitioner, KnownMixedBatch) {
  // keys: a a b c  ->  wave0 = {0,2,3}, wave1 = {1}
  const WavePlan plan = ConflictPartitioner::plan_keys({1, 1, 2, 3});
  ASSERT_EQ(plan.num_waves(), 2u);
  EXPECT_EQ(plan.wave_size(0), 3u);
  EXPECT_EQ(plan.wave_size(1), 1u);
  EXPECT_EQ(plan.order, (std::vector<std::uint32_t>{0, 2, 3, 1}));
  EXPECT_EQ(plan.max_wave_size(), 3u);
  EXPECT_EQ(plan.mean_occupancy(), 2.0);
}

TEST(ConflictPartitioner, RandomBatchInvariants) {
  Xoshiro256 rng(99);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng.bounded(40));
  const WavePlan plan = ConflictPartitioner::plan_keys(keys);

  // `order` is a permutation of the batch.
  std::vector<bool> seen(keys.size(), false);
  ASSERT_EQ(plan.order.size(), keys.size());
  for (const std::uint32_t i : plan.order) {
    ASSERT_LT(i, keys.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }

  std::vector<std::uint32_t> wave_of(keys.size());
  for (std::size_t w = 0; w < plan.num_waves(); ++w) {
    // Within a wave every key is distinct (disjointness detection).
    std::set<std::uint64_t> wave_keys;
    for (std::size_t i = plan.wave_begin[w]; i < plan.wave_begin[w + 1]; ++i) {
      wave_of[plan.order[i]] = static_cast<std::uint32_t>(w);
      EXPECT_TRUE(wave_keys.insert(keys[plan.order[i]]).second)
          << "duplicate key in wave " << w;
    }
  }
  // Same-key events occupy strictly increasing waves in input order.
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      if (keys[i] == keys[j]) {
        EXPECT_LT(wave_of[i], wave_of[j]);
      }
    }
  }
}

TEST(ConflictPartitioner, ConflictVertexCanonicalisesUndirectedPairs) {
  const EdgeEvent uv{3, 9, 1, EdgeOp::kAdd};
  const EdgeEvent vu{9, 3, 1, EdgeOp::kDelete};
  EXPECT_EQ(conflict_vertex(uv, /*undirected=*/true), 3u);
  EXPECT_EQ(conflict_vertex(vu, /*undirected=*/true), 3u);
  // Directed engines route by the literal source.
  EXPECT_EQ(conflict_vertex(uv, /*undirected=*/false), 3u);
  EXPECT_EQ(conflict_vertex(vu, /*undirected=*/false), 9u);
}

TEST(ConflictPartitioner, PlanOverEventsKeysByCanonicalVertex) {
  // (1,5) and (5,1) conflict; (2,6) is independent of both.
  const std::vector<EdgeEvent> batch = {{1, 5, 1, EdgeOp::kAdd},
                                        {5, 1, 1, EdgeOp::kDelete},
                                        {2, 6, 1, EdgeOp::kAdd}};
  const WavePlan plan = ConflictPartitioner::plan(batch, /*undirected=*/true);
  ASSERT_EQ(plan.num_waves(), 2u);
  EXPECT_EQ(plan.wave_size(0), 2u);  // add(1,5) + add(2,6)
  EXPECT_EQ(plan.wave_size(1), 1u);  // delete(5,1) after its pair's add
  EXPECT_EQ(plan.order[plan.wave_begin[1]], 1u);
}

}  // namespace
}  // namespace remo::test
