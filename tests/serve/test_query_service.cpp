// QueryService: the epoch-consistent read contract (docs/SERVING.md).
// The flagship test runs concurrent readers against live mutation —
// including delete bursts plus repair — and asserts every answer matches
// SOME published versioned snapshot's state. Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "../support.hpp"

namespace remo::test {
namespace {

TEST(QueryService, AnswersMatchSomePublishedViewAcrossDeleteBursts) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);

  // Manual refresh only: every published view passes through this thread,
  // so `published` below is the complete publication history.
  serve::QueryService qs(engine, {.refresh_period_ms = 0});
  qs.serve(id, serve::ViewRole::kDistance);

  std::map<std::uint64_t, std::shared_ptr<const serve::StateView>> published;
  auto capture = [&] {
    const auto v = qs.view(id);
    published[v->version()] = v;
  };
  capture();  // the initial view from serve()

  constexpr VertexId kVerts = 24;
  struct Obs {
    std::uint64_t version;
    VertexId vertex;
    StateWord value;
  };
  std::atomic<bool> stop{false};
  std::vector<std::vector<Obs>> pinned_obs(3);
  std::vector<std::vector<Obs>> point_obs(3);  // version 0 = point API
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Xoshiro256 rng(1000 + static_cast<std::uint64_t>(t));
      std::uint64_t last_version = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const VertexId v = static_cast<VertexId>(rng.bounded(kVerts));
        if (rng.bounded(2) == 0) {
          const auto view = qs.view(id);
          // Versions a reader observes never go backwards.
          ASSERT_GE(view->version(), last_version);
          last_version = view->version();
          pinned_obs[static_cast<std::size_t>(t)].push_back(
              {view->version(), v, view->at(v)});
        } else {
          point_obs[static_cast<std::size_t>(t)].push_back(
              {0, v, qs.state(id, v)});
        }
      }
    });
  }

  // Mutation phases interleaved with publications: grow, burst deletes +
  // repair, re-grow — readers run throughout. Track live unordered pairs
  // so adds never duplicate and deletes always cut an existing edge.
  Xoshiro256 rng(7);
  std::vector<EdgeEvent> live;
  RobinHoodMap<std::uint64_t, std::uint8_t> is_live;
  auto pair_key = [](VertexId a, VertexId b) {
    const VertexId lo = a < b ? a : b;
    const VertexId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };
  for (int phase = 0; phase < 6; ++phase) {
    if (phase % 3 == 2 && !live.empty()) {
      // Delete burst, then repair.
      for (int k = 0; k < 4 && !live.empty(); ++k) {
        const std::size_t i = rng.bounded(live.size());
        EdgeEvent e = live[i];
        live[i] = live.back();
        live.pop_back();
        is_live.insert_or_assign(pair_key(e.src, e.dst), 0);
        e.op = EdgeOp::kDelete;
        engine.inject_edge(e);
      }
      engine.drain();
      engine.repair(id);
    } else {
      for (int k = 0; k < 8; ++k) {
        const EdgeEvent e{static_cast<VertexId>(rng.bounded(kVerts)),
                          static_cast<VertexId>(rng.bounded(kVerts)), 1,
                          EdgeOp::kAdd};
        if (e.src == e.dst) continue;
        std::uint8_t& flag = is_live.get_or_insert(pair_key(e.src, e.dst));
        if (flag) continue;
        flag = 1;
        live.push_back(e);
        engine.inject_edge(e);
      }
      engine.drain();
    }
    qs.refresh(id);
    capture();
  }
  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  // Every pinned observation matches the captured view of that version;
  // every point answer matches at least one published view.
  std::uint64_t checked = 0;
  for (const auto& per_thread : pinned_obs) {
    for (const Obs& o : per_thread) {
      const auto it = published.find(o.version);
      ASSERT_NE(it, published.end()) << "unpublished version " << o.version;
      EXPECT_EQ(o.value, it->second->at(o.vertex));
      ++checked;
    }
  }
  for (const auto& per_thread : point_obs) {
    for (const Obs& o : per_thread) {
      bool matched = false;
      for (const auto& [ver, view] : published)
        if (view->at(o.vertex) == o.value) {
          matched = true;
          break;
        }
      EXPECT_TRUE(matched) << "vertex " << o.vertex << " answer " << o.value
                           << " matches no published view";
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_EQ(qs.stats().refreshes, published.size());
}

TEST(QueryService, LiveIngestWithAutoRefreshConvergesToOracle) {
  const EdgeList edges =
      generate_erdos_renyi({.num_vertices = 400, .num_edges = 2000, .seed = 17});
  const CsrGraph g = undirected_csr(edges);

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();

  serve::QueryService qs(engine, {.refresh_period_ms = 2});
  qs.serve(id, serve::ViewRole::kComponent);
  qs.start();

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    Xoshiro256 rng(3);
    std::uint64_t last_version = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const VertexId u = static_cast<VertexId>(rng.bounded(400));
      const VertexId v = static_cast<VertexId>(rng.bounded(400));
      (void)qs.component_of(id, u);
      (void)qs.connected(id, u, v);
      const auto view = qs.view(id);
      ASSERT_GE(view->version(), last_version);
      last_version = view->version();
    }
  });

  engine.ingest(make_streams(edges, 2));  // blocks until converged
  stop.store(true, std::memory_order_release);
  reader.join();
  qs.stop();
  qs.refresh(id);

  const auto view = qs.view(id);
  expect_snapshot_matches_oracle(view->snapshot(), g, static_cc_union_find(g));

  const serve::ServeStats st = qs.stats();
  EXPECT_GT(st.queries_served, 0u);
  EXPECT_GE(st.refreshes, 2u);
  EXPECT_EQ(st.served_programs, 1u);
  // Quiescent + just refreshed: the newest view misses nothing.
  EXPECT_EQ(st.read_epoch_lag_events, 0u);
}

TEST(QueryService, PinnedViewsAreImmutableAndVersioned) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);
  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.drain();

  serve::QueryService qs(engine, {.refresh_period_ms = 0});
  qs.serve(id, serve::ViewRole::kDistance);
  const auto v1 = qs.view(id);
  ASSERT_EQ(v1->at(1), 2u);
  EXPECT_EQ(v1->at(2), kInfiniteState);

  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();
  qs.refresh(id);
  const auto v2 = qs.view(id);

  // The old handle is frozen at its cut; the new one supersedes it.
  EXPECT_EQ(v1->at(2), kInfiniteState);
  EXPECT_EQ(v2->at(2), 3u);
  EXPECT_GT(v2->version(), v1->version());
  EXPECT_NE(v2->epoch(), v1->epoch());
  EXPECT_GE(v2->watermark(), v1->watermark());
}

TEST(QueryService, VersionedCutsStampEpochs) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  engine.ingest(make_streams(small_graph(), 2));

  const Snapshot s1 = engine.collect_versioned(id);
  const Snapshot s2 = engine.collect_versioned(id);
  EXPECT_EQ(s2.epoch(), static_cast<std::uint16_t>(s1.epoch() + 1));
  // A quiescent collect observes the current epoch without advancing it.
  const Snapshot s3 = engine.collect_quiescent(id);
  EXPECT_EQ(s3.epoch(), s2.epoch());
}

TEST(QueryService, CatalogAnswersOnSmallGraph) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [deg_id, deg] = engine.attach_make<DegreeTracker>();
  engine.inject_init(bfs_id, 0);
  engine.ingest(make_streams(small_graph(), 2));

  serve::QueryService qs(engine, {.refresh_period_ms = 0, .top_k = 4});
  qs.serve(bfs_id, serve::ViewRole::kDistance);
  qs.serve(cc_id, serve::ViewRole::kComponent);
  qs.serve(deg_id, serve::ViewRole::kDegree);

  // Distance / reachability (source 0; path 0-1-2-3, triangle 2-4-5).
  EXPECT_EQ(qs.distance(bfs_id, 0), 1u);
  EXPECT_EQ(qs.distance(bfs_id, 3), 4u);
  EXPECT_TRUE(qs.reachable(bfs_id, 5));
  EXPECT_FALSE(qs.reachable(bfs_id, 6));  // other component
  EXPECT_EQ(qs.distance(bfs_id, 7), kInfiniteState);

  // Components: {0..5} and {6,7}; untouched vertices are connected to
  // nothing, not even each other.
  EXPECT_TRUE(qs.connected(cc_id, 0, 5));
  EXPECT_TRUE(qs.connected(cc_id, 6, 7));
  EXPECT_FALSE(qs.connected(cc_id, 0, 6));
  EXPECT_FALSE(qs.connected(cc_id, 98, 99));
  EXPECT_EQ(qs.component_of(cc_id, 0), qs.component_of(cc_id, 3));

  // Degrees: 2 has degree 4; ties broken by vertex id ascending.
  EXPECT_EQ(qs.state(deg_id, 2), 4u);
  const auto top = qs.top_k_degree(deg_id, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (std::pair<VertexId, StateWord>{2, 4}));
  EXPECT_EQ(top[1], (std::pair<VertexId, StateWord>{1, 2}));
  EXPECT_EQ(top[2], (std::pair<VertexId, StateWord>{4, 2}));

  EXPECT_EQ(qs.stats().served_programs, 3u);
}

TEST(QueryService, BackgroundRepairPublishesDeleteResults) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);
  engine.inject_edge({0, 1, 1, EdgeOp::kAdd});
  engine.inject_edge({1, 2, 1, EdgeOp::kAdd});
  engine.drain();

  serve::QueryService qs(engine,
                         {.refresh_period_ms = 2, .repair_on_refresh = true});
  qs.serve(id, serve::ViewRole::kDistance);
  qs.start();
  ASSERT_EQ(qs.view(id)->at(2), 3u);

  // Cut 1-2 and let the background refresher run repair + publish.
  engine.inject_edge({1, 2, 1, EdgeOp::kDelete});
  engine.drain();
  bool unreachable = false;
  for (int spin = 0; spin < 4000 && !unreachable; ++spin) {
    unreachable = qs.view(id)->at(2) == kInfiniteState;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  qs.stop();
  EXPECT_TRUE(unreachable)
      << "background repair_on_refresh never published the regressed state";
}

}  // namespace
}  // namespace remo::test
