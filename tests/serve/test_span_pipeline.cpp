// Write-path spans through the real serving plane: concurrent submitters
// feed a WriteGate wired to a SpanRecorder while a QueryService publishes
// views, and every sampled batch's span must close with monotone
// milestones and a watermark its covering view actually reached. This is
// the TSan target for the recorder: gate pump thread, dispatch workers,
// the refresh thread's epoch-drain + publish callbacks, and a stats
// sampler all hit the one mutex concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../support.hpp"
#include "serve/serving_gauges.hpp"

namespace remo::test {
namespace {

std::vector<EdgeEvent> ring_events(VertexId n, VertexId stride,
                                   std::uint64_t salt) {
  std::vector<EdgeEvent> ev;
  ev.reserve(n);
  for (VertexId i = 0; i < n; ++i)
    ev.push_back({static_cast<VertexId>((i * stride + salt) % n),
                  static_cast<VertexId>((i * stride + salt + 1) % n), 1,
                  EdgeOp::kAdd});
  return ev;
}

TEST(SpanPipeline, ConcurrentSubmittersEverySpanCloses) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);

  obs::SpanRecorder rec;  // sample_shift 0: span every batch
  serve::QueryService qs(engine, {.refresh_period_ms = 5, .spans = &rec});
  qs.serve(bfs_id, serve::ViewRole::kDistance);
  qs.start();

  serve::WriteGate gate(
      engine, {.batch_limit = 64, .dispatch_threads = 3, .spans = &rec});

  constexpr int kWriters = 4;
  constexpr int kBatchesPerWriter = 12;
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int b = 0; b < kBatchesPerWriter; ++b)
        gate.submit_batch(ring_events(
            200, static_cast<VertexId>(2 * w + 3),
            static_cast<std::uint64_t>(w * kBatchesPerWriter + b)));
    });
  }
  // A concurrent sampler imitating the metrics exporter.
  std::atomic<bool> sampling{true};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_acquire)) {
      obs::GaugeSample s = engine.sample_gauges();
      serve::fill_serving_gauges(s, &qs, &gate, &rec);
      EXPECT_TRUE(s.serving.present);
      std::this_thread::yield();
    }
  });
  for (auto& t : writers) t.join();
  gate.flush();
  engine.drain();
  qs.refresh_all();  // covering publish: closes every remaining span
  sampling.store(false, std::memory_order_release);
  sampler.join();
  qs.stop();

  const obs::SpanSnapshot snap = rec.snapshot();
  EXPECT_GT(snap.batches_sampled, 0u);
  EXPECT_EQ(snap.completed, snap.batches_sampled);
  EXPECT_EQ(snap.open, 0u);
  EXPECT_EQ(snap.dropped_open, 0u);
  EXPECT_EQ(snap.freshness.hist.count, snap.completed);

  const std::uint64_t final_wm = engine.ingested_watermark();
  for (const obs::WriteSpan& s : snap.spans) {
    EXPECT_EQ(obs::cause_origin(s.id), obs::kSpanOrigin);
    // Milestones monotone; stage durations consistent with them.
    EXPECT_LE(s.queued_ns, s.begin_ns);
    EXPECT_LE(s.begin_ns, s.admitted_ns);
    EXPECT_LE(s.admitted_ns, s.drained_ns);
    EXPECT_LE(s.drained_ns, s.published_ns);
    EXPECT_EQ(s.total_ns, s.published_ns - s.queued_ns);
    std::uint64_t sum = 0;
    for (const std::uint64_t d : s.stage_ns) sum += d;
    EXPECT_LE(sum, s.total_ns);
    // The admission watermark was a real ingested count.
    EXPECT_GT(s.watermark, 0u);
    EXPECT_LE(s.watermark, final_wm);
    EXPECT_GT(s.events, 0u);
  }
  // Exemplar traces resolve to retained spans (history is larger than the
  // batch count here, so nothing was evicted).
  for (const obs::Exemplar& e : snap.freshness.exemplars)
    EXPECT_NE(snap.find(e.trace), nullptr);
}

TEST(SpanPipeline, SampledRecorderCountsEveryBatch) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);

  obs::SpanRecorder rec({.sample_shift = 2});  // span every 4th batch
  serve::QueryService qs(engine, {.refresh_period_ms = 5, .spans = &rec});
  qs.serve(bfs_id, serve::ViewRole::kDistance);
  qs.start();
  serve::WriteGate gate(
      engine, {.batch_limit = 128, .dispatch_threads = 2, .spans = &rec});
  for (int b = 0; b < 16; ++b)
    gate.submit_batch(ring_events(128, 3, static_cast<std::uint64_t>(b)));
  gate.flush();
  engine.drain();
  qs.refresh_all();
  qs.stop();

  const obs::SpanCounts c = rec.counts();
  EXPECT_GT(c.batches_seen, 0u);
  EXPECT_GT(c.batches_sampled, 0u);
  EXPECT_LE(c.batches_sampled, c.batches_seen);
  EXPECT_EQ(c.completed, c.batches_sampled);
  EXPECT_EQ(c.open, 0u);
  // Deterministic 1-in-4 sampling: seen batches may exceed submit count
  // (the pump may split or merge swaps), but the ratio holds.
  EXPECT_EQ(c.batches_sampled, (c.batches_seen + 3) / 4);
}

TEST(SpanPipeline, GateWithoutServiceSpansStayOpenUntilPublish) {
  // No QueryService at all: spans admit and drain, but nothing publishes,
  // so they must remain open (not complete, not dropped) — the recorder
  // never invents a publish.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(bfs_id, 0);

  obs::SpanRecorder rec;
  serve::WriteGate gate(
      engine, {.batch_limit = 64, .dispatch_threads = 2, .spans = &rec});
  gate.submit_batch(ring_events(256, 3, 1));
  gate.flush();
  engine.drain();

  const obs::SpanCounts c = rec.counts();
  EXPECT_GT(c.batches_sampled, 0u);
  EXPECT_EQ(c.completed, 0u);
  EXPECT_EQ(c.open, c.batches_sampled);

  // A later manual publish at the final watermark closes them all.
  rec.on_view_published(engine.ingested_watermark(), engine.obs_now());
  EXPECT_EQ(rec.counts().open, 0u);
  EXPECT_EQ(rec.counts().completed, c.batches_sampled);
}

}  // namespace
}  // namespace remo::test
