// WriteGate: conflict-scheduled admission must be observationally
// equivalent to serial in-order injection (docs/SERVING.md soundness
// argument), including under mixed add/delete churn, concurrent
// submitters, and the serial-fallback path for conflict-dominated batches.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "../support.hpp"

namespace remo::test {
namespace {

/// Deterministic mixed add/delete churn over `num_vertices` vertices. A
/// never-deleted backbone chain 0-1-...-(backbone-1) keeps the BFS source
/// connected; beyond it, adds pick a pair not currently live and deletes
/// pick a live non-backbone pair — so per-pair histories alternate
/// add/delete and the final topology is well defined.
struct Churn {
  std::vector<EdgeEvent> events;
  EdgeList final_edges;  // live pairs after the whole history
};

Churn make_churn(std::uint64_t seed, VertexId num_vertices, std::size_t n,
                 VertexId backbone = 8) {
  Churn out;
  Xoshiro256 rng(seed);
  std::vector<std::pair<VertexId, VertexId>> live;
  auto key = [](VertexId a, VertexId b) {
    const VertexId lo = a < b ? a : b;
    const VertexId hi = a < b ? b : a;
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  };
  RobinHoodMap<std::uint64_t, std::uint8_t> is_live;
  for (VertexId v = 0; v + 1 < backbone; ++v) {
    out.events.push_back({v, v + 1, 1, EdgeOp::kAdd});
    out.final_edges.push_back({v, v + 1, 1});
  }
  while (out.events.size() < n) {
    if (!live.empty() && rng.bounded(4) == 0) {
      const std::size_t i = rng.bounded(live.size());
      const auto [u, v] = live[i];
      live[i] = live.back();
      live.pop_back();
      is_live.insert_or_assign(key(u, v), 0);
      out.events.push_back({u, v, 1, EdgeOp::kDelete});
    } else {
      const VertexId u = static_cast<VertexId>(rng.bounded(num_vertices));
      const VertexId v = static_cast<VertexId>(rng.bounded(num_vertices));
      if (u == v || u < backbone || v < backbone) continue;
      std::uint8_t& flag = is_live.get_or_insert(key(u, v));
      if (flag) continue;
      flag = 1;
      live.push_back({u, v});
      out.events.push_back({u, v, 1, EdgeOp::kAdd});
    }
  }
  for (const auto& [u, v] : live) out.final_edges.push_back({u, v, 1});
  return out;
}

TEST(WriteGate, ChurnAdmissionMatchesConvergedOracle) {
  const Churn churn = make_churn(/*seed=*/41, /*num_vertices=*/48, /*n=*/600);
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);

  serve::WriteGate gate(engine, {.batch_limit = 64, .dispatch_threads = 3});
  for (const EdgeEvent& e : churn.events) gate.submit(e);
  gate.flush();
  engine.drain();
  engine.repair(id);

  const CsrGraph g = undirected_csr(churn.final_edges);
  expect_matches_oracle(engine, id, g, static_bfs(g, g.dense_of(0)));

  const serve::WriteGateStats st = gate.stats();
  EXPECT_EQ(st.events_submitted, churn.events.size());
  EXPECT_EQ(st.events_dispatched, churn.events.size());
  EXPECT_GE(st.batches, churn.events.size() / 64);
}

TEST(WriteGate, ConcurrentSubmittersConverge) {
  // Two application threads pushing disjoint vertex ranges through one
  // gate; add-only, so DynamicCc applies and the union graph's union-find
  // labelling is the oracle.
  const EdgeList lo =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 220, .seed = 5});
  EdgeList hi =
      generate_erdos_renyi({.num_vertices = 64, .num_edges = 220, .seed = 6});
  for (Edge& e : hi) {
    e.src += 100;
    e.dst += 100;
  }

  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  serve::WriteGate gate(engine, {.batch_limit = 32, .dispatch_threads = 2});

  auto pusher = [&gate](const EdgeList& edges) {
    std::vector<EdgeEvent> chunk;
    for (const Edge& e : edges) {
      chunk.push_back({e.src, e.dst, e.weight, EdgeOp::kAdd});
      if (chunk.size() == 16) {
        gate.submit_batch(chunk);
        chunk.clear();
      }
    }
    if (!chunk.empty()) gate.submit_batch(chunk);
  };
  std::thread t1(pusher, std::cref(lo));
  std::thread t2(pusher, std::cref(hi));
  t1.join();
  t2.join();
  gate.flush();
  engine.drain();

  EdgeList all = lo;
  all.insert(all.end(), hi.begin(), hi.end());
  const CsrGraph g = undirected_csr(all);
  expect_matches_oracle(engine, id, g, static_cc_union_find(g));
  EXPECT_EQ(gate.stats().events_dispatched, all.size());
}

TEST(WriteGate, HotPairBatchFallsBackToSerial) {
  // Every event in the batch conflicts on one canonical vertex: mean
  // occupancy is ~1, so the gate must skip wave dispatch and inject
  // serially in submission order — and the alternating add/delete history
  // must still land on the correct final state.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(
      0, DynamicBfs::Options{.support_deletes = true});
  engine.inject_init(id, 0);

  serve::WriteGate gate(engine, {.batch_limit = 32, .dispatch_threads = 3});
  gate.submit({0, 1, 1, EdgeOp::kAdd});
  // 32 further events, all on pair (1,2), ending live (odd count).
  for (int i = 0; i < 33; ++i)
    gate.submit({1, 2, 1, i % 2 == 0 ? EdgeOp::kAdd : EdgeOp::kDelete});
  gate.flush();
  engine.drain();
  engine.repair(id);

  EXPECT_EQ(engine.state_of(id, 2), 3u);
  const serve::WriteGateStats st = gate.stats();
  EXPECT_GE(st.serial_fallback_batches, 1u);
  EXPECT_EQ(st.events_dispatched, 34u);
}

TEST(WriteGate, DestructorFlushesPending) {
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, bfs] = engine.attach_make<DynamicBfs>(0);
  engine.inject_init(id, 0);
  {
    serve::WriteGate gate(engine);  // default batch_limit far above 2
    gate.submit({0, 1, 1, EdgeOp::kAdd});
    gate.submit({1, 2, 1, EdgeOp::kAdd});
    EXPECT_EQ(gate.stats().events_dispatched, 0u);
  }  // destructor flushes
  engine.drain();
  EXPECT_EQ(engine.state_of(id, 2), 3u);
}

TEST(WriteGate, WaveStatsReportOccupancy) {
  // 256 events over 128 distinct pairs with disjoint canonical sources:
  // wide waves, no fallback, occupancy well above the serial floor.
  Engine engine(EngineConfig{.num_ranks = 2});
  auto [id, cc] = engine.attach_make<DynamicCc>();
  serve::WriteGate gate(engine, {.batch_limit = 128, .dispatch_threads = 2});
  for (VertexId u = 0; u < 128; ++u) {
    gate.submit({2 * u, 2 * u + 1, 1, EdgeOp::kAdd});
    gate.submit({2 * u + 1, 2 * u, 1, EdgeOp::kAdd});  // same pair, wave 2
  }
  gate.flush();
  engine.drain();

  const serve::WriteGateStats st = gate.stats();
  EXPECT_EQ(st.serial_fallback_batches, 0u);
  EXPECT_GE(st.waves, 2u);
  EXPECT_GT(st.parallel_waves, 0u);
  EXPECT_GE(st.mean_wave_occupancy, 2.0);
  EXPECT_GE(st.max_wave_size, 64u);
}

}  // namespace
}  // namespace remo::test
