// TwoTierAdjacency: inline tier, promotion, erase semantics, caches.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "storage/adjacency.hpp"

namespace remo::test {
namespace {

constexpr std::uint32_t kThresh = 8;

TEST(Adjacency, StaysCompactBelowThreshold) {
  TwoTierAdjacency adj;
  for (VertexId n = 0; n < kThresh; ++n) EXPECT_TRUE(adj.insert(n, 1, kThresh));
  EXPECT_FALSE(adj.promoted());
  EXPECT_EQ(adj.degree(), kThresh);
}

TEST(Adjacency, PromotesAboveThreshold) {
  TwoTierAdjacency adj;
  for (VertexId n = 0; n <= kThresh; ++n) EXPECT_TRUE(adj.insert(n, 1, kThresh));
  EXPECT_TRUE(adj.promoted());
  EXPECT_EQ(adj.degree(), kThresh + 1);
  for (VertexId n = 0; n <= kThresh; ++n) EXPECT_TRUE(adj.contains(n));
}

TEST(Adjacency, DuplicateInsertUpdatesWeight) {
  TwoTierAdjacency adj;
  EXPECT_TRUE(adj.insert(7, 3, kThresh));
  EXPECT_FALSE(adj.insert(7, 9, kThresh));
  EXPECT_EQ(adj.degree(), 1u);
  EXPECT_EQ(adj.weight_of(7), 9u);
}

TEST(Adjacency, EraseInBothTiers) {
  TwoTierAdjacency small;
  small.insert(1, 1, kThresh);
  small.insert(2, 1, kThresh);
  EXPECT_TRUE(small.erase(1));
  EXPECT_FALSE(small.erase(1));
  EXPECT_EQ(small.degree(), 1u);

  TwoTierAdjacency big;
  for (VertexId n = 0; n < 50; ++n) big.insert(n, 1, kThresh);
  EXPECT_TRUE(big.promoted());
  for (VertexId n = 0; n < 50; n += 2) EXPECT_TRUE(big.erase(n));
  EXPECT_EQ(big.degree(), 25u);
  for (VertexId n = 1; n < 50; n += 2) EXPECT_TRUE(big.contains(n));
}

TEST(Adjacency, PromotedStaysPromotedWhenEmptied) {
  TwoTierAdjacency adj;
  for (VertexId n = 0; n < 20; ++n) adj.insert(n, 1, kThresh);
  for (VertexId n = 0; n < 20; ++n) adj.erase(n);
  EXPECT_EQ(adj.degree(), 0u);
  EXPECT_TRUE(adj.promoted());
  adj.insert(99, 1, kThresh);
  EXPECT_TRUE(adj.contains(99));
}

TEST(Adjacency, NeighbourCacheSurvivesPromotion) {
  TwoTierAdjacency adj;
  adj.insert(5, 1, kThresh);
  adj.find(5)->set_cache(/*algo=*/2, 1234);
  for (VertexId n = 10; n < 10 + kThresh + 2; ++n) adj.insert(n, 1, kThresh);
  ASSERT_TRUE(adj.promoted());
  ASSERT_NE(adj.find(5), nullptr);
  EXPECT_EQ(adj.find(5)->cache_for(2), 1234u);
  EXPECT_EQ(adj.find(5)->cache_for(3), kInfiniteState);  // other program
}

TEST(Adjacency, ForEachVisitsAllOnce) {
  TwoTierAdjacency adj;
  std::set<VertexId> expect;
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const VertexId n = rng.bounded(1000);
    adj.insert(n, 1, kThresh);
    expect.insert(n);
  }
  std::set<VertexId> seen;
  adj.for_each([&](VertexId n, EdgeProp&) { EXPECT_TRUE(seen.insert(n).second); });
  EXPECT_EQ(seen, expect);
}

TEST(Adjacency, ZeroThresholdPromotesImmediately) {
  TwoTierAdjacency adj;
  adj.insert(1, 1, /*promote_threshold=*/0);
  EXPECT_TRUE(adj.promoted());
  EXPECT_EQ(adj.degree(), 1u);
}

}  // namespace
}  // namespace remo::test
