// DegAwareStore differential test vs a reference map-of-maps, plus
// interface semantics (DESIGN.md invariant 6).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "storage/degaware_store.hpp"
#include "storage/std_store.hpp"

namespace remo::test {
namespace {

TEST(DegAwareStore, InsertReportsNewVertexAndEdge) {
  DegAwareStore s;
  auto r1 = s.insert_edge(1, 2, 5);
  EXPECT_TRUE(r1.new_vertex);
  EXPECT_TRUE(r1.new_edge);
  auto r2 = s.insert_edge(1, 3, 5);
  EXPECT_FALSE(r2.new_vertex);
  EXPECT_TRUE(r2.new_edge);
  auto r3 = s.insert_edge(1, 2, 7);
  EXPECT_FALSE(r3.new_vertex);
  EXPECT_FALSE(r3.new_edge);
  EXPECT_EQ(s.edge_count(), 2u);
  EXPECT_EQ(s.vertex_count(), 1u);
  EXPECT_EQ(s.edge_weight(1, 2), 7u);
}

TEST(DegAwareStore, EraseMaintainsCounts) {
  DegAwareStore s;
  s.insert_edge(1, 2, 1);
  s.insert_edge(1, 3, 1);
  EXPECT_TRUE(s.erase_edge(1, 2));
  EXPECT_FALSE(s.erase_edge(1, 2));
  EXPECT_FALSE(s.erase_edge(9, 9));
  EXPECT_EQ(s.edge_count(), 1u);
  EXPECT_EQ(s.degree(1), 1u);
  // Vertex record survives with zero edges.
  s.erase_edge(1, 3);
  EXPECT_TRUE(s.has_vertex(1));
  EXPECT_EQ(s.degree(1), 0u);
}

TEST(DegAwareStore, InsertVertexWithoutEdges) {
  DegAwareStore s;
  EXPECT_TRUE(s.insert_vertex(42));
  EXPECT_FALSE(s.insert_vertex(42));
  EXPECT_TRUE(s.has_vertex(42));
  EXPECT_EQ(s.degree(42), 0u);
}

TEST(DegAwareStore, DifferentialVsReference) {
  StoreConfig cfg;
  cfg.promote_threshold = 3;  // force both tiers into play
  DegAwareStore s(cfg);
  std::map<VertexId, std::map<VertexId, Weight>> ref;
  Xoshiro256 rng(23);
  std::size_t ref_edges = 0;

  for (int op = 0; op < 50000; ++op) {
    const VertexId u = rng.bounded(40);
    const VertexId v = rng.bounded(40);
    const Weight w = static_cast<Weight>(1 + rng.bounded(9));
    if (rng.bounded(3) != 0) {
      const bool fresh = ref[u].emplace(v, w).second;
      if (!fresh) ref[u][v] = w;
      ref_edges += fresh;
      const auto res = s.insert_edge(u, v, w);
      EXPECT_EQ(res.new_edge, fresh);
    } else {
      auto it = ref.find(u);
      const bool existed = it != ref.end() && it->second.erase(v) != 0;
      ref_edges -= existed;
      EXPECT_EQ(s.erase_edge(u, v), existed);
    }
    ASSERT_EQ(s.edge_count(), ref_edges);
  }

  // Full content comparison.
  for (const auto& [u, nbrs] : ref) {
    ASSERT_EQ(s.degree(u), nbrs.size()) << "vertex " << u;
    for (const auto& [v, w] : nbrs) {
      ASSERT_TRUE(s.has_edge(u, v)) << u << "->" << v;
      EXPECT_EQ(s.edge_weight(u, v), w);
    }
  }
}

TEST(DegAwareStore, ForEachVertexCoversAll) {
  DegAwareStore s;
  for (VertexId v = 0; v < 100; ++v) s.insert_edge(v, v + 1000, 1);
  std::set<VertexId> seen;
  s.for_each_vertex([&](VertexId v, TwoTierAdjacency& adj) {
    EXPECT_TRUE(seen.insert(v).second);
    EXPECT_EQ(adj.degree(), 1u);
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(StdStoreBaseline, MatchesDegAwareBehaviour) {
  DegAwareStore a;
  StdStore b;
  Xoshiro256 rng(29);
  for (int op = 0; op < 10000; ++op) {
    const VertexId u = rng.bounded(30);
    const VertexId v = rng.bounded(30);
    if (rng.bounded(3) != 0) {
      const auto ra = a.insert_edge(u, v, 1);
      const auto rb = b.insert_edge(u, v, 1);
      EXPECT_EQ(ra.new_edge, rb.new_edge);
    } else {
      EXPECT_EQ(a.erase_edge(u, v), b.erase_edge(u, v));
    }
  }
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.vertex_count(), b.vertex_count());
}

TEST(DegAwareStore, MemoryAccountingScalesWithContent) {
  DegAwareStore s;
  const std::size_t empty = s.memory_bytes();
  for (VertexId v = 0; v < 1000; ++v) s.insert_edge(v % 37, v, 1);
  EXPECT_GT(s.memory_bytes(), empty);
}

}  // namespace
}  // namespace remo::test
