// Handle-invalidation audit (the RobinHoodMap satellite of the fuzzing PR):
// every operation that can move a resident entry must bump the structure's
// generation(), because the engine's ingest hot path holds EdgeProp*/
// TwoTierAdjacency* handles across calls and asserts on the counter instead
// of re-probing. These tests pin the bump sites layer by layer — map,
// adjacency, store — and exercise the re-resolution discipline a caller
// must follow when the counter does change.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "storage/adjacency.hpp"
#include "storage/degaware_store.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo::test {
namespace {

constexpr std::uint32_t kThresh = 8;

TEST(RobinHoodGeneration, GrowthRehashBumps) {
  RobinHoodMap<std::uint64_t, std::uint64_t> map;
  const auto g0 = map.generation();
  map.insert_or_assign(1, 10);  // empty -> kMinCapacity rehash
  EXPECT_GT(map.generation(), g0);

  map.reserve(64);
  const auto g1 = map.generation();
  // Stay under the load factor: no growth, so any further bumps below come
  // only from displacement — tolerated, but growth alone must show up too.
  for (std::uint64_t k = 2; k < 40; ++k) map.insert_or_assign(k, k);
  const auto g2 = map.generation();
  for (std::uint64_t k = 40; k < 400; ++k) map.insert_or_assign(k, k);  // grows
  EXPECT_GT(map.generation(), g2);
  (void)g1;
}

TEST(RobinHoodGeneration, EraseAndClearBump) {
  RobinHoodMap<std::uint64_t, std::uint64_t> map;
  for (std::uint64_t k = 0; k < 16; ++k) map.insert_or_assign(k, k);
  const auto g0 = map.generation();
  EXPECT_FALSE(map.erase(999));  // miss: nothing moved
  EXPECT_EQ(map.generation(), g0);
  EXPECT_TRUE(map.erase(7));  // backward shift: residents move
  const auto g1 = map.generation();
  EXPECT_GT(g1, g0);
  map.clear();
  EXPECT_GT(map.generation(), g1);
}

TEST(RobinHoodGeneration, UnchangedGenerationMeansLiveHandle) {
  // The contract the engine relies on, exercised as an invariant: whenever
  // an interleaved insert leaves generation() unchanged, a previously
  // obtained Value* must still address the same entry.
  RobinHoodMap<std::uint64_t, std::uint64_t> map;
  map.reserve(256);
  map.insert_or_assign(42, 4242);
  std::uint64_t* handle = map.find(42);
  ASSERT_NE(handle, nullptr);
  auto gen = map.generation();
  for (std::uint64_t k = 1000; k < 1150; ++k) {
    map.insert_or_assign(k, k);
    if (map.generation() != gen) {
      handle = map.find(42);  // re-resolve, as the contract demands
      ASSERT_NE(handle, nullptr);
      gen = map.generation();
    }
    ASSERT_EQ(*handle, 4242u) << "stale handle after inserting " << k;
  }
}

TEST(AdjacencyGeneration, InlineReallocBumps) {
  TwoTierAdjacency adj;
  // SmallVector inline capacity is 2: the first two edges stay put...
  adj.insert(1, 1, kThresh);
  adj.insert(2, 1, kThresh);
  const auto g0 = adj.generation();
  // ...and the third reallocates the buffer, killing EdgeProp handles.
  adj.insert(3, 1, kThresh);
  EXPECT_GT(adj.generation(), g0);
}

TEST(AdjacencyGeneration, SwapEraseBumps) {
  TwoTierAdjacency adj;
  adj.insert(1, 1, kThresh);
  adj.insert(2, 1, kThresh);
  adj.insert(3, 1, kThresh);
  const auto g0 = adj.generation();
  EXPECT_FALSE(adj.erase(99));  // miss: no move, no bump
  EXPECT_EQ(adj.generation(), g0);
  EXPECT_TRUE(adj.erase(1));  // tail edge swaps into the hole
  EXPECT_GT(adj.generation(), g0);
}

TEST(AdjacencyGeneration, PromotionBumps) {
  TwoTierAdjacency adj;
  for (VertexId n = 0; n < kThresh; ++n) adj.insert(n, 1, kThresh);
  ASSERT_FALSE(adj.promoted());
  const auto g0 = adj.generation();
  adj.insert(kThresh, 1, kThresh);  // crosses the threshold
  ASSERT_TRUE(adj.promoted());
  EXPECT_GT(adj.generation(), g0);
}

TEST(AdjacencyGeneration, TableTierMutationsFlowThrough) {
  TwoTierAdjacency adj;
  for (VertexId n = 0; n < 64; ++n) adj.insert(n, 1, kThresh);
  ASSERT_TRUE(adj.promoted());
  const auto g0 = adj.generation();
  EXPECT_TRUE(adj.erase(5));  // table backward-shift
  EXPECT_GT(adj.generation(), g0);
}

TEST(StoreGeneration, VertexMapGrowthInvalidatesInsertResult) {
  DegAwareStore store;
  auto res = store.insert_edge(1, 2, 7);
  ASSERT_TRUE(res.new_edge);
  ASSERT_NE(res.adj, nullptr);
  const auto gen = store.generation();
  // Flood the vertex map so records move (rehash / displacement). The old
  // InsertResult handles are now suspect; the generation says so.
  for (VertexId v = 100; v < 400; ++v) store.insert_edge(v, v + 1, 1);
  EXPECT_NE(store.generation(), gen);
  // Re-resolution — not the stale handle — recovers the edge.
  TwoTierAdjacency* adj = store.adjacency(1);
  ASSERT_NE(adj, nullptr);
  EdgeProp* prop = adj->find(2);
  ASSERT_NE(prop, nullptr);
  EXPECT_EQ(prop->weight, 7u);
}

TEST(StoreGeneration, SameVertexEdgeChurnLeavesVertexMapAlone) {
  DegAwareStore store;
  store.insert_edge(1, 2, 1);
  const auto gen = store.generation();
  // Mutating one vertex's adjacency moves nothing in the vertex map...
  for (VertexId n = 3; n < 30; ++n) store.insert_edge(1, n, 1);
  EXPECT_EQ(store.generation(), gen);
  // ...but the adjacency's own generation does advance (promotion happened).
  EXPECT_TRUE(store.adjacency(1)->promoted());
}

}  // namespace
}  // namespace remo::test
