// RobinHoodMap unit + randomized differential tests against
// std::unordered_map (DESIGN.md invariant 6).
#include <gtest/gtest.h>

#include <unordered_map>

#include "common/rng.hpp"
#include "storage/robin_hood_map.hpp"

namespace remo::test {
namespace {

TEST(RobinHoodMap, InsertFindErase) {
  RobinHoodMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.insert_or_assign(1, 10));
  EXPECT_TRUE(m.insert_or_assign(2, 20));
  EXPECT_FALSE(m.insert_or_assign(1, 11));  // overwrite
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(1), 11);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_TRUE(m.erase(1));
  EXPECT_FALSE(m.erase(1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.find(1), nullptr);
}

TEST(RobinHoodMap, GetOrInsertDefaultConstructs) {
  RobinHoodMap<std::uint64_t, int> m;
  EXPECT_EQ(m.get_or_insert(5), 0);
  m.get_or_insert(5) = 42;
  EXPECT_EQ(m.get_or_insert(5), 42);
  EXPECT_EQ(m.size(), 1u);
}

TEST(RobinHoodMap, GrowthPreservesEntries) {
  RobinHoodMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 10000; ++i) m.insert_or_assign(i, i * 3);
  EXPECT_EQ(m.size(), 10000u);
  for (std::uint64_t i = 0; i < 10000; ++i) {
    ASSERT_NE(m.find(i), nullptr) << i;
    EXPECT_EQ(*m.find(i), i * 3);
  }
}

TEST(RobinHoodMap, BackwardShiftKeepsClustersFindable) {
  // Insert colliding-ish keys, erase from the middle, re-find the rest.
  RobinHoodMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 64; ++i) m.insert_or_assign(i * 8, static_cast<int>(i));
  for (std::uint64_t i = 0; i < 64; i += 2) EXPECT_TRUE(m.erase(i * 8));
  for (std::uint64_t i = 1; i < 64; i += 2) {
    ASSERT_NE(m.find(i * 8), nullptr);
    EXPECT_EQ(*m.find(i * 8), static_cast<int>(i));
  }
}

TEST(RobinHoodMap, ForEachVisitsExactlyOnce) {
  RobinHoodMap<std::uint64_t, std::uint64_t> m;
  for (std::uint64_t i = 0; i < 500; ++i) m.insert_or_assign(i, i);
  std::uint64_t count = 0, sum = 0;
  m.for_each([&](const std::uint64_t& k, std::uint64_t& v) {
    ++count;
    sum += k;
    EXPECT_EQ(k, v);
  });
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(sum, 499u * 500u / 2);
}

TEST(RobinHoodMap, ReserveAvoidsRehashDuringFill) {
  RobinHoodMap<std::uint64_t, int> m;
  m.reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t i = 0; i < 1000; ++i) m.insert_or_assign(i, 1);
  EXPECT_EQ(m.capacity(), cap);
}

TEST(RobinHoodMap, ProbeDistanceStaysSmall) {
  RobinHoodMap<std::uint64_t, int> m;
  Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) m.insert_or_assign(rng(), 1);
  // Robin Hood keeps the mean probe length tiny at 0.875 load.
  EXPECT_LT(m.mean_probe_distance(), 3.0);
}

TEST(RobinHoodMap, DifferentialVsUnorderedMap) {
  RobinHoodMap<std::uint64_t, std::uint64_t> rh;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Xoshiro256 rng(17);
  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t key = rng.bounded(512);  // dense key space: collisions
    switch (rng.bounded(4)) {
      case 0:
      case 1: {  // insert/overwrite
        const std::uint64_t val = rng();
        rh.insert_or_assign(key, val);
        ref[key] = val;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(rh.erase(key), ref.erase(key) != 0);
        break;
      }
      default: {  // lookup
        const auto it = ref.find(key);
        const std::uint64_t* got = rh.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(got, nullptr);
        } else {
          ASSERT_NE(got, nullptr);
          EXPECT_EQ(*got, it->second);
        }
      }
    }
    ASSERT_EQ(rh.size(), ref.size());
  }
  // Final sweep: contents identical.
  std::size_t visited = 0;
  rh.for_each([&](const std::uint64_t& k, std::uint64_t& v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(RobinHoodMap, ClearResetsButKeepsCapacity) {
  RobinHoodMap<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 100; ++i) m.insert_or_assign(i, 1);
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.find(5), nullptr);
  m.insert_or_assign(5, 2);
  EXPECT_EQ(*m.find(5), 2);
}

}  // namespace
}  // namespace remo::test
