// Shared helpers for the remo test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "remo/remo.hpp"

namespace remo::test {

/// Undirected CSR (reverse edges materialised) from a directed edge list —
/// the static view of what an undirected engine ingests.
inline CsrGraph undirected_csr(const EdgeList& edges) {
  return CsrGraph::build(with_reverse_edges(edges));
}

/// A vertex inside the largest connected component (the paper's sourcing
/// methodology: "a vertex is randomly pre-chosen so that it is known to
/// eventually lie within the largest connected component").
inline VertexId vertex_in_largest_cc(const CsrGraph& g) {
  const auto labels = static_cc_union_find(g);
  // Count component sizes by label.
  RobinHoodMap<StateWord, std::uint64_t> sizes;
  for (const StateWord l : labels) ++sizes.get_or_insert(l);
  StateWord best_label = 0;
  std::uint64_t best = 0;
  sizes.for_each([&](const StateWord& l, std::uint64_t& n) {
    if (n > best) {
      best = n;
      best_label = l;
    }
  });
  for (CsrGraph::Dense v = 0; v < g.num_vertices(); ++v)
    if (labels[v] == best_label) return g.external_of(v);
  return kInvalidVertex;
}

/// Assert that program `p`'s converged state equals a dense oracle over
/// the CSR's vertex set.
inline void expect_matches_oracle(Engine& engine, ProgramId p, const CsrGraph& g,
                                  const std::vector<StateWord>& oracle) {
  ASSERT_EQ(oracle.size(), g.num_vertices());
  std::uint64_t mismatches = 0;
  for (CsrGraph::Dense v = 0; v < g.num_vertices() && mismatches < 10; ++v) {
    const VertexId ext = g.external_of(v);
    const StateWord got = engine.state_of(p, ext);
    if (got != oracle[v]) {
      ++mismatches;
      ADD_FAILURE() << "vertex " << ext << ": dynamic=" << got
                    << " oracle=" << oracle[v];
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

/// Assert a snapshot equals a dense oracle over the CSR's vertex set.
inline void expect_snapshot_matches_oracle(const Snapshot& snap, const CsrGraph& g,
                                           const std::vector<StateWord>& oracle) {
  ASSERT_EQ(oracle.size(), g.num_vertices());
  std::uint64_t mismatches = 0;
  for (CsrGraph::Dense v = 0; v < g.num_vertices() && mismatches < 10; ++v) {
    const VertexId ext = g.external_of(v);
    const StateWord got = snap.at(ext);
    if (got != oracle[v]) {
      ++mismatches;
      ADD_FAILURE() << "vertex " << ext << ": snapshot=" << got
                    << " oracle=" << oracle[v];
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

/// Canonicalise an undirected edge list: drop self-loops and keep one
/// representative per unordered pair. Needed whenever per-edge random
/// weights feed a distance oracle — duplicate arcs with distinct weights
/// would make the converged minimum depend on ingest order.
inline EdgeList dedupe_undirected(const EdgeList& edges) {
  EdgeList out;
  RobinHoodMap<std::uint64_t, std::uint8_t> seen;
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    const VertexId lo = e.src < e.dst ? e.src : e.dst;
    const VertexId hi = e.src < e.dst ? e.dst : e.src;
    const std::uint64_t key = hash_combine(splitmix64(lo), hi);
    if (seen.contains(key)) continue;
    seen.insert_or_assign(key, 1);
    out.push_back(e);
  }
  return out;
}

/// A small deterministic test graph: a path 0-1-2-3 plus a triangle 2-4-5
/// and an isolated pair 6-7.
inline EdgeList small_graph() {
  return {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {2, 4, 1}, {4, 5, 1}, {5, 2, 1}, {6, 7, 1}};
}

}  // namespace remo::test
