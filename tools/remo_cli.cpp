// remo — command line front end.
//
//   remo generate --kind rmat --scale 16 --out graph.bin [--seed 1]
//   remo stats    --graph graph.bin
//   remo ingest   --graph graph.bin [--ranks 4] [--streams 4]
//                 [--algo none|bfs|sssp|cc|st|degree|wsssp|pagerank] [--source V]
//                 [--weights MAX] [--snapshot out.txt] [--safra]
//   remo serve    --graph graph.bin [--queries N] [--query-threads T]
//                 [--refresh-ms MS] [--gate] [--spans] [--stats-json FILE]
//   remo prof     --graph graph.bin [...]   (ingest with --prof forced on)
//   remo bench-compare A.json B.json [--gate METRIC=PCT] [--force]
//
// Files ending in .txt use the text edge format; everything else the
// packed binary format (src u64, dst u64, weight u32).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "remo/remo.hpp"

using namespace remo;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool flag(const std::string& name) const { return kv.count("--" + name) != 0; }
  std::string str(const std::string& name, const std::string& dflt = "") const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& name, std::uint64_t dflt) const {
    auto it = kv.find("--" + name);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  if (argc >= 2) a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    // A lone "-" is a value (stdout for --metrics-out), not an option.
    const bool next_is_value =
        i + 1 < argc &&
        (argv[i + 1][0] != '-' || std::strcmp(argv[i + 1], "-") == 0);
    if (key.rfind("--", 0) == 0 && next_is_value) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";  // bare flag
    }
  }
  return a;
}

bool is_text(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
}

EdgeList load(const std::string& path) {
  return is_text(path) ? read_edges_text(path) : read_edges_binary(path);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  remo generate --kind rmat|er|ba --scale N --out FILE [--seed S]\n"
               "  remo stats    --graph FILE\n"
               "  remo ingest   --graph FILE [--ranks N] [--streams N]\n"
               "                [--algo none|bfs|sssp|cc|st|degree|wsssp|pagerank] [--source V]\n"
               "                [--tolerance X] [--weights MAX] [--snapshot OUT.txt] [--safra]\n"
               "                [--batch-size N] [--no-coalesce]\n"
               "                [--pinning none|compact|scatter|numa-spread]\n"
               "                [--arenas] [--no-hugepages] [--no-numa-bind]\n"
               "                [--arena-chunk BYTES]\n"
               "                [--stats] [--stats-json FILE] [--trace FILE]\n"
               "                [--latency-sample SHIFT]\n"
               "                [--lineage] [--lineage-out FILE] [--lineage-sample SHIFT]\n"
               "                [--watch] [--metrics-out FILE] [--metrics-period MS]\n"
               "                [--metrics-format jsonl|prom] [--watchdog]\n"
               "                [--prof] [--prof-out FILE] [--prof-shift N]\n"
               "                [--prof-backend auto|perf|perf_event|rusage|noop|none]\n"
               "                [--folded FILE] [--prof-period-us US]\n"
               "  remo prof     (alias: ingest with --prof forced on)\n"
               "  remo serve    --graph FILE [--ranks N] [--streams N] [--source V]\n"
               "                [--queries N] [--query-threads T] [--refresh-ms MS]\n"
               "                [--top-k K] [--safra] [--seed S]\n"
               "                [--gate] [--gate-batch N] [--gate-threads T]\n"
               "                [--spans] [--spans-out FILE] [--span-sample SHIFT]\n"
               "                [--stats-json FILE] [--trace FILE]\n"
               "                [--metrics-out FILE] [--metrics-period MS]\n"
               "                [--metrics-format jsonl|prom]\n"
               "                [--prof] [--prof-out FILE] [--prof-shift N]\n"
               "                [--prof-backend auto|perf|perf_event|rusage|noop|none]\n"
               "                [--folded FILE] [--prof-period-us US]\n"
               "                [--pinning MODE] [--arenas] [--no-hugepages]\n"
               "                [--no-numa-bind] [--arena-chunk BYTES]\n"
               "  remo trace-analyze --lineage FILE [--top K] [--min-descendants N]\n"
               "  remo trace-analyze --spans FILE [--tail] [--tail-pct P]\n"
               "                     [--require-complete]\n"
               "  remo trace-analyze --prof FILE [--spans FILE]\n"
               "  remo bench-compare A.json B.json [--gate METRIC=PCT]\n"
               "                     [--gate-pct PCT] [--force]\n"
               "  remo fuzz       [--seeds N] [--seed-base S] [--vertices N]\n"
               "                  [--events N] [--deletes PERMILLE] [--max-weight W]\n"
               "                  [--mutations PERMILLE] [--algo NAME]\n"
               "                  [--out-dir DIR] [--keep-going] [--no-shrink]\n"
               "                  [--shrink-runs N] [--query-observer]\n"
               "  remo fuzz-repro --file FILE [--shrink] [--out FILE]\n"
               "                  [--query-observer]\n"
               "\n"
               "differential fuzzing (docs/TESTING.md):\n"
               "  fuzz               run N seeded cases across the algorithm x\n"
               "                     ranks x detector matrix, diffing converged\n"
               "                     state against the static oracles; exit 1 and\n"
               "                     drop a remo-repro-1 file in --out-dir\n"
               "                     (default fuzz-out/) on any divergence\n"
               "  fuzz-repro         replay one repro file byte-for-byte; with\n"
               "                     --shrink, minimise it first and write the\n"
               "                     result to --out (default FILE.min)\n"
               "\n"
               "query serving (docs/SERVING.md):\n"
               "  serve              ingest FILE live while T reader threads issue\n"
               "                     N point queries (distance, component, s-t\n"
               "                     reachability, top-k degree) against\n"
               "                     epoch-consistent views; prints query p50/p99\n"
               "                     and the sustained update throughput\n"
               "  --refresh-ms MS    view republish period (default 50)\n"
               "  --gate             admit updates through the conflict-scheduled\n"
               "                     WriteGate (parallel injection of\n"
               "                     disjoint-target waves) instead of streams\n"
               "  --spans            trace every admitted batch end-to-end through\n"
               "                     the write path (needs --gate); prints the\n"
               "                     write-to-readable freshness p50/p99\n"
               "  --spans-out FILE   write completed spans + per-stage histograms\n"
               "                     with exemplars (remo-spans-1 JSON; implies\n"
               "                     --spans); feed to trace-analyze --spans\n"
               "  --span-sample N    span every 2^N-th batch (default 0 = all)\n"
               "  --query-observer   (fuzz / fuzz-repro) run a query-issuing\n"
               "                     observer against every case while it ingests —\n"
               "                     adds serving-plane interleavings; verdicts are\n"
               "                     unchanged (docs/TESTING.md)\n"
               "\n"
               "observability (docs/OBSERVABILITY.md):\n"
               "  --stats            print counters, latency percentiles, phase times\n"
               "  --stats-json FILE  write the same as JSON (schema remo-stats-1)\n"
               "  --trace FILE       capture a chrome://tracing / Perfetto trace\n"
               "  --latency-sample N time every 2^N-th update (default 6; 0 = all)\n"
               "\n"
               "causal lineage (docs/OBSERVABILITY.md \"Causal lineage\"):\n"
               "  --lineage          trace sampled updates' propagation cascades\n"
               "  --lineage-out FILE write the merged lineage (remo-lineage-1 JSON;\n"
               "                     implies --lineage)\n"
               "  --lineage-sample N stamp every 2^N-th topology event (default 6)\n"
               "  trace-analyze      read a lineage dump; print amplification stats\n"
               "                     and the top-K most expensive updates with their\n"
               "                     critical paths; exit 1 when any sampled cause\n"
               "                     spawned fewer than --min-descendants visitors\n"
               "\n"
               "write-path spans (docs/OBSERVABILITY.md \"Write-path spans\"):\n"
               "  trace-analyze --spans FILE\n"
               "                     read a remo-spans-1 dump; print the freshness\n"
               "                     percentiles. With --tail, attribute latency at\n"
               "                     --tail-pct (default 99) across the six write\n"
               "                     stages and list exemplar trace IDs; with\n"
               "                     --require-complete, exit 1 if any sampled span\n"
               "                     never closed\n"
               "\n"
               "message path (DESIGN.md §6):\n"
               "  --batch-size N     per-destination send-buffer batch (default 128)\n"
               "  --no-coalesce      deliver every Update visitor verbatim instead\n"
               "                     of merging same-sender monotone updates\n"
               "\n"
               "memory & locality (DESIGN.md \"Memory & locality\"):\n"
               "  --pinning MODE     pin rank threads to cores: none (default) |\n"
               "                     compact | scatter | numa-spread\n"
               "  --arenas           route vertex storage and mailbox rings through\n"
               "                     per-rank huge-page arenas bound to the rank's\n"
               "                     NUMA node (degrades to THP, then plain pages,\n"
               "                     with a stderr banner — never fails)\n"
               "  --no-hugepages     skip the hugetlb/THP tiers (plain pages)\n"
               "  --no-numa-bind     skip mbind; rely on first-touch only\n"
               "  --arena-chunk N    arena chunk size in bytes (default 8 MiB)\n"
               "\n"
               "hardware counters (docs/OBSERVABILITY.md \"Profiling\"):\n"
               "  --prof             open per-rank counter groups (cycles, instr,\n"
               "                     LLC loads/misses, branch misses, stalls,\n"
               "                     dTLB loads/misses, page faults) and\n"
               "                     attribute them to engine phases; prints the\n"
               "                     per-rank x per-phase IPC / miss-rate table\n"
               "  --prof-out FILE    write the remo-prof-1 JSON snapshot (feed to\n"
               "                     trace-analyze --prof)\n"
               "  --prof-shift N     read counters every 2^N-th phase boundary\n"
               "                     (default 4)\n"
               "  --prof-backend B   accepted values: auto (default; tries\n"
               "                     perf_event, falls back to rusage, then noop),\n"
               "                     perf or perf_event (force hardware counters),\n"
               "                     rusage (task clock + minor/major faults via\n"
               "                     getrusage), noop or none (disable reads)\n"
               "  --folded FILE      sampled on-CPU profile as folded stacks\n"
               "                     (flamegraph.pl compatible)\n"
               "  --prof-period-us U stack sampling period (default 1000)\n"
               "  trace-analyze --prof FILE [--spans FILE]\n"
               "                     re-print a prof dump's attribution tables;\n"
               "                     with --spans, join phase counters against the\n"
               "                     write-path stage percentiles\n"
               "  bench-compare      diff two remo-bench-1 reports metric-by-metric\n"
               "                     with %% deltas; exit 1 when a gated metric\n"
               "                     (default: events_per_second at 3%%) regresses;\n"
               "                     refuses differing config blocks unless --force\n"
               "\n"
               "live telemetry (sampled every --metrics-period ms, default 100):\n"
               "  --watch            refreshing one-line-per-rank live view of the\n"
               "                     watermarks, queue depths, and convergence lag\n"
               "  --metrics-out FILE periodic exporter; '-' streams JSONL to stdout\n"
               "  --metrics-format   jsonl (default; schema remo-gauges-1) or prom\n"
               "                     (Prometheus text, file rewritten atomically)\n"
               "  --watchdog         flag ranks with backlog but no progress for 3\n"
               "                     periods; diagnostic dump goes to stderr\n");
  return 2;
}

int cmd_generate(const Args& a) {
  const std::string kind = a.str("kind", "rmat");
  const auto scale = static_cast<std::uint32_t>(a.num("scale", 16));
  const std::uint64_t seed = a.num("seed", 1);
  const std::string out = a.str("out");
  if (out.empty()) return usage();

  EdgeList edges;
  if (kind == "rmat") {
    RmatParams p;
    p.scale = scale;
    p.seed = seed;
    edges = generate_rmat(p);
  } else if (kind == "er") {
    ErdosRenyiParams p;
    p.num_vertices = std::uint64_t{1} << scale;
    p.num_edges = p.num_vertices * 16;
    p.seed = seed;
    edges = generate_erdos_renyi(p);
  } else if (kind == "ba") {
    PrefAttachParams p;
    p.num_vertices = std::uint64_t{1} << scale;
    p.edges_per_vertex = 16;
    p.seed = seed;
    edges = generate_pref_attach(p);
  } else {
    return usage();
  }

  if (is_text(out))
    write_edges_text(out, edges);
  else
    write_edges_binary(out, edges);
  std::printf("wrote %s edges to %s\n", with_commas(edges.size()).c_str(),
              out.c_str());
  return 0;
}

int cmd_stats(const Args& a) {
  const std::string path = a.str("graph");
  if (path.empty()) return usage();
  const EdgeList edges = load(path);
  RobinHoodMap<VertexId, std::uint64_t> degree;
  for (const Edge& e : edges) {
    ++degree.get_or_insert(e.src);
    ++degree.get_or_insert(e.dst);
  }
  std::uint64_t max_deg = 0;
  degree.for_each([&](const VertexId&, std::uint64_t& d) {
    if (d > max_deg) max_deg = d;
  });
  const CsrGraph g = CsrGraph::build(with_reverse_edges(edges));
  std::printf("edges (directed):    %s\n", with_commas(edges.size()).c_str());
  std::printf("vertices:            %s\n", with_commas(degree.size()).c_str());
  std::printf("max degree:          %s\n", with_commas(max_deg).c_str());
  std::printf("connected components:%s\n",
              with_commas(static_cc_count(g)).c_str());
  return 0;
}

// --- Hardware-counter profiling (docs/OBSERVABILITY.md "Profiling") --------

/// Fold the --prof* flags into the engine config. Asking for any prof
/// output implies --prof.
void apply_prof_args(const Args& a, EngineConfig& cfg) {
  const bool want = a.flag("prof") || !a.str("prof-out").empty() ||
                    !a.str("folded").empty();
  if (!want) return;
  cfg.obs.prof = true;
  cfg.obs.prof_sample_shift = static_cast<std::uint32_t>(
      a.num("prof-shift", cfg.obs.prof_sample_shift));
  const std::string backend = a.str("prof-backend", "auto");
  if (backend == "perf" || backend == "perf_event")
    cfg.obs.prof_backend = obs::ProfBackendKind::kPerfEvent;
  else if (backend == "rusage")
    cfg.obs.prof_backend = obs::ProfBackendKind::kRusage;
  else if (backend == "noop" || backend == "none")
    cfg.obs.prof_backend = obs::ProfBackendKind::kNoop;
  if (!a.str("folded").empty()) {
    cfg.obs.prof_stacks = true;
    cfg.obs.prof_stack_period_us = static_cast<std::uint32_t>(
        a.num("prof-period-us", cfg.obs.prof_stack_period_us));
  }
}

// --- Memory & locality plane (DESIGN.md "Memory & locality") ----------------

/// Fold the --pinning / --arenas flags into the engine config. Degradation
/// (no hugepages, no NUMA, rank > CPU wrap) prints a banner at engine
/// construction but never fails the run.
int apply_memory_args(const Args& a, EngineConfig& cfg) {
  if (const std::string mode = a.str("pinning"); !mode.empty()) {
    if (!parse_pinning_mode(mode.c_str(), &cfg.pinning)) {
      std::fprintf(stderr,
                   "unknown --pinning mode '%s' (expected none | compact | "
                   "scatter | numa-spread)\n", mode.c_str());
      return usage();
    }
  }
  if (a.flag("arenas")) cfg.memory.arenas = true;
  if (a.flag("no-hugepages")) cfg.memory.huge_pages = false;
  if (a.flag("no-numa-bind")) cfg.memory.numa_bind = false;
  if (const std::uint64_t n = a.num("arena-chunk", 0); n > 0)
    cfg.memory.arena_chunk_bytes = static_cast<std::size_t>(n);
  return 0;
}

/// Print the attribution tables and write the requested artefacts after a
/// run. Returns nonzero only on a write failure (degraded backends print a
/// banner but exit clean — CI containers without perf access must pass).
int report_prof(const Args& a, Engine& engine) {
  if (!engine.prof_enabled()) return 0;
  std::fputs(obs::format_prof_report(engine.prof_snapshot()).c_str(), stdout);
  if (const std::string out = a.str("prof-out"); !out.empty()) {
    if (!engine.write_prof(out)) {
      std::fprintf(stderr, "failed to write prof counters to %s\n", out.c_str());
      return 1;
    }
    std::printf("prof counters written to %s (analyze with `remo "
                "trace-analyze --prof %s`)\n", out.c_str(), out.c_str());
  }
  if (const std::string folded = a.str("folded"); !folded.empty()) {
    if (!obs::StackSampler::supported() || engine.stack_sampler() == nullptr) {
      std::fprintf(stderr,
                   "stack sampling unavailable on this platform; no folded "
                   "output written\n");
    } else if (!engine.write_folded(folded)) {
      std::fprintf(stderr, "failed to write folded stacks to %s\n",
                   folded.c_str());
      return 1;
    } else {
      std::printf("folded stacks written to %s (flamegraph.pl %s > prof.svg)\n",
                  folded.c_str(), folded.c_str());
    }
  }
  return 0;
}

int cmd_ingest(const Args& a) {
  const std::string path = a.str("graph");
  if (path.empty()) return usage();
  const EdgeList edges = load(path);

  EngineConfig cfg;
  cfg.num_ranks = static_cast<RankId>(a.num("ranks", 4));
  if (a.flag("safra")) cfg.termination = TerminationMode::kSafra;
  cfg.batch_size = static_cast<std::size_t>(a.num("batch-size", cfg.batch_size));
  if (a.flag("no-coalesce")) cfg.coalesce = false;
  if (const int rc = apply_memory_args(a, cfg); rc != 0) return rc;

  const bool want_stats = a.flag("stats");
  const std::string stats_json = a.str("stats-json");
  const std::string trace_path = a.str("trace");
  cfg.obs.trace = !trace_path.empty();
  cfg.obs.latency_sample_shift = static_cast<std::uint32_t>(
      a.num("latency-sample", cfg.obs.latency_sample_shift));
  const std::string lineage_out = a.str("lineage-out");
  cfg.obs.lineage = a.flag("lineage") || !lineage_out.empty();
  cfg.obs.lineage_sample_shift = static_cast<std::uint32_t>(
      a.num("lineage-sample", cfg.obs.lineage_sample_shift));
  apply_prof_args(a, cfg);
  Engine engine(cfg);

  const std::string algo = a.str("algo", "none");
  const VertexId source = a.num("source", edges.empty() ? 0 : edges.front().src);
  ProgramId prog_id = 0;
  bool have_program = true;
  if (algo == "bfs") {
    auto [id, p] = engine.attach_make<DynamicBfs>(source);
    prog_id = id;
    engine.inject_init(id, source);
  } else if (algo == "sssp") {
    auto [id, p] = engine.attach_make<DynamicSssp>(source);
    prog_id = id;
    engine.inject_init(id, source);
  } else if (algo == "cc") {
    auto [id, p] = engine.attach_make<DynamicCc>();
    prog_id = id;
  } else if (algo == "st") {
    auto [id, p] =
        engine.attach_make<MultiStConnectivity>(std::vector<VertexId>{source});
    prog_id = id;
    inject_st_sources(engine, id, *p);
  } else if (algo == "degree") {
    auto [id, p] = engine.attach_make<DegreeTracker>();
    prog_id = id;
  } else if (algo == "wsssp") {
    auto [id, p] = engine.attach_make<WeightedSssp>(source);
    prog_id = id;
    engine.inject_init(id, source);
  } else if (algo == "pagerank") {
    // No init: PageRankDelta bootstraps from on_add publishes. The publish
    // tolerance bounds cascade reach (DESIGN.md §8); the exactness default
    // of 1e-9 is right for small fuzz graphs but cascades graph-wide during
    // live construction at bench scales — loosen it for interactive use.
    PageRankDelta::Options popt;
    popt.tolerance = std::strtod(a.str("tolerance", "1e-9").c_str(), nullptr);
    prog_id = engine.attach(std::make_shared<PageRankDelta>(popt));
  } else if (algo == "none") {
    have_program = false;
  } else {
    return usage();
  }

  StreamOptions opts;
  opts.seed = a.num("seed", 7);
  if (const std::uint64_t maxw = a.num("weights", 1); maxw > 1)
    opts.max_weight = static_cast<Weight>(maxw);
  const std::size_t n_streams = a.num("streams", cfg.num_ranks);
  const StreamSet streams = make_streams(edges, n_streams, opts);

  // Live telemetry (docs/OBSERVABILITY.md): periodic exporter, stall
  // watchdog, and the --watch live view all poll engine.sample_gauges().
  const auto metrics_period =
      std::chrono::milliseconds(a.num("metrics-period", 100));
  std::unique_ptr<obs::MetricsExporter> exporter;
  const std::string metrics_out = a.str("metrics-out");
  if (!metrics_out.empty()) {
    obs::MetricsExporter::Config ecfg;
    ecfg.period = metrics_period;
    ecfg.path = metrics_out;
    const std::string fmt = a.str("metrics-format", "jsonl");
    if (fmt == "prom" || fmt == "prometheus") {
      ecfg.format = obs::MetricsExporter::Format::kPrometheus;
      if (metrics_out == "-") {
        std::fprintf(stderr, "--metrics-format prom needs a real file path\n");
        return usage();
      }
    } else if (fmt != "jsonl") {
      return usage();
    }
    exporter = std::make_unique<obs::MetricsExporter>(
        [&engine] { return engine.sample_gauges(); }, ecfg);
  }
  std::unique_ptr<obs::StallWatchdog> watchdog;
  if (a.flag("watchdog")) {
    obs::StallWatchdog::Config wcfg;
    wcfg.period = metrics_period;
    wcfg.extra_dump = [&engine](std::uint32_t r) { return engine.stall_dump(r); };
    watchdog = std::make_unique<obs::StallWatchdog>(
        [&engine] { return engine.sample_gauges(); }, wcfg);
  }

  IngestStats stats;
  if (a.flag("watch")) {
    engine.ingest_async(streams);
    std::size_t lines = 0;
    const auto refresh = [&] {
      const std::string view = engine.sample_gauges().watch_view();
      // Cursor up over the previous frame, clear to end of screen, redraw.
      if (lines) std::printf("\x1b[%zuA\x1b[0J", lines);
      std::fputs(view.c_str(), stdout);
      std::fflush(stdout);
      lines = static_cast<std::size_t>(
          std::count(view.begin(), view.end(), '\n'));
    };
    while (!engine.idle()) {
      refresh();
      std::this_thread::sleep_for(metrics_period);
    }
    stats = engine.await_quiescence();
    refresh();  // final frame: lag 0, everyone idle
  } else {
    stats = engine.ingest(streams);
  }
  if (watchdog) watchdog->stop();
  if (exporter) exporter->stop();  // emits the final (quiescent) sample
  std::printf("ingested %s events in %.3f s — %s\n",
              with_commas(stats.events).c_str(), stats.seconds,
              remo::strfmt("%.2fM events/s", stats.events_per_second / 1e6).c_str());
  std::printf("stored: %s vertices, %s directed arcs, %s resident\n",
              with_commas(engine.total_stored_vertices()).c_str(),
              with_commas(engine.total_stored_edges()).c_str(),
              human_bytes(engine.store_memory_bytes()).c_str());

  const MetricsSummary m = engine.metrics();
  std::printf("messages: %s total, %s crossed ranks, %s algorithm callbacks\n",
              with_commas(m.messages_sent).c_str(),
              with_commas(m.remote_messages).c_str(),
              with_commas(m.algorithm_events).c_str());

  if (have_program) {
    const Snapshot snap = engine.collect_quiescent(prog_id);
    std::printf("algorithm '%s': %s vertices carry non-identity state\n",
                algo.c_str(), with_commas(snap.size()).c_str());
    const std::string snap_out = a.str("snapshot");
    if (!snap_out.empty()) {
      std::FILE* f = std::fopen(snap_out.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", snap_out.c_str());
        return 1;
      }
      std::fprintf(f, "# vertex state (%s, source=%llu)\n", algo.c_str(),
                   static_cast<unsigned long long>(source));
      for (const auto& [v, s] : snap)
        std::fprintf(f, "%llu %llu\n", static_cast<unsigned long long>(v),
                     static_cast<unsigned long long>(s));
      std::fclose(f);
      std::printf("snapshot written to %s\n", snap_out.c_str());
    }
  }

  // Observability artefacts last, so they cover any snapshot/collect work.
  if (want_stats || !stats_json.empty()) {
    const obs::MetricsSnapshot snap = engine.metrics_snapshot();
    if (want_stats) std::fputs(snap.to_text().c_str(), stdout);
    if (!stats_json.empty()) {
      std::FILE* f = std::fopen(stats_json.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "cannot open %s\n", stats_json.c_str());
        return 1;
      }
      Json doc = snap.to_json();
      // Achieved memory-plane state (page backing tier, pin slots,
      // degradation note) — the dTLB runbook points here.
      doc["memory"] = engine.memory_plane().to_json();
      const std::string text = doc.dump(2);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("stats written to %s\n", stats_json.c_str());
    }
  }
  if (!trace_path.empty()) {
    if (engine.write_trace(trace_path)) {
      std::printf("trace written to %s (load in ui.perfetto.dev or "
                  "chrome://tracing)\n", trace_path.c_str());
    } else if (!engine.tracing_enabled()) {
      std::fprintf(stderr, "trace capture unavailable (compiled out?)\n");
      return 1;
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
  if (cfg.obs.lineage) {
    const obs::LineageSummary ls = engine.lineage_snapshot().summary();
    std::printf(
        "lineage: %s causes sampled — visitors/update p50 %s p99 %s, depth "
        "p50 %u p99 %u, cross-rank ratio %.3f\n",
        with_commas(ls.sampled).c_str(), with_commas(ls.visitors_p50).c_str(),
        with_commas(ls.visitors_p99).c_str(), ls.depth_p50, ls.depth_p99,
        ls.cross_rank_ratio);
    if (!lineage_out.empty()) {
      if (!engine.write_lineage(lineage_out)) {
        std::fprintf(stderr, "failed to write lineage to %s\n",
                     lineage_out.c_str());
        return 1;
      }
      std::printf("lineage written to %s (analyze with `remo trace-analyze "
                  "--lineage %s`)\n",
                  lineage_out.c_str(), lineage_out.c_str());
    }
  }
  if (const int rc = report_prof(a, engine); rc != 0) return rc;
  return 0;
}

// --- Query serving (docs/SERVING.md) ---------------------------------------

int cmd_serve(const Args& a) {
  const std::string path = a.str("graph");
  if (path.empty()) return usage();
  const EdgeList edges = load(path);

  const std::string trace_path = a.str("trace");
  const std::string spans_out = a.str("spans-out");
  const bool use_gate = a.flag("gate");
  bool want_spans = a.flag("spans") || !spans_out.empty();
  if (want_spans && !use_gate) {
    std::fprintf(stderr,
                 "note: --spans traces the WriteGate write path; ignored "
                 "without --gate\n");
    want_spans = false;
  }

  EngineConfig cfg;
  cfg.num_ranks = static_cast<RankId>(a.num("ranks", 4));
  if (a.flag("safra")) cfg.termination = TerminationMode::kSafra;
  cfg.obs.trace = !trace_path.empty();
  apply_prof_args(a, cfg);
  if (const int rc = apply_memory_args(a, cfg); rc != 0) return rc;
  Engine engine(cfg);

  std::unique_ptr<obs::SpanRecorder> spans;
  if (want_spans) {
    obs::SpanRecorderConfig rcfg;
    rcfg.sample_shift = static_cast<std::uint32_t>(a.num("span-sample", 0));
    spans = std::make_unique<obs::SpanRecorder>(rcfg);
  }
  std::unique_ptr<serve::WriteGate> gate;  // created with the write side

  const VertexId source = a.num("source", edges.empty() ? 0 : edges.front().src);
  auto [bfs_id, bfs] = engine.attach_make<DynamicBfs>(source);
  auto [cc_id, cc] = engine.attach_make<DynamicCc>();
  auto [deg_id, deg] = engine.attach_make<DegreeTracker>();
  (void)bfs; (void)cc; (void)deg;
  engine.inject_init(bfs_id, source);

  serve::QueryServiceConfig scfg;
  scfg.refresh_period_ms =
      static_cast<std::uint32_t>(a.num("refresh-ms", 50));
  scfg.top_k = a.num("top-k", 16);
  scfg.spans = spans.get();
  serve::QueryService qs(engine, scfg);
  qs.serve(bfs_id, serve::ViewRole::kDistance);
  qs.serve(cc_id, serve::ViewRole::kComponent);
  qs.serve(deg_id, serve::ViewRole::kDegree);
  qs.start();

  // Live telemetry over the whole serving plane: the sampler decorates
  // engine gauges with serve/gate/span counters (docs/OBSERVABILITY.md).
  std::unique_ptr<obs::MetricsExporter> exporter;
  if (const std::string metrics_out = a.str("metrics-out");
      !metrics_out.empty()) {
    obs::MetricsExporter::Config ecfg;
    ecfg.period = std::chrono::milliseconds(a.num("metrics-period", 100));
    ecfg.path = metrics_out;
    const std::string fmt = a.str("metrics-format", "jsonl");
    if (fmt == "prom" || fmt == "prometheus") {
      ecfg.format = obs::MetricsExporter::Format::kPrometheus;
      if (metrics_out == "-") {
        std::fprintf(stderr, "--metrics-format prom needs a real file path\n");
        return usage();
      }
    } else if (fmt != "jsonl") {
      return usage();
    }
    exporter = std::make_unique<obs::MetricsExporter>(
        [&engine, &qs, &gate, &spans] {
          obs::GaugeSample s = engine.sample_gauges();
          serve::fill_serving_gauges(s, &qs, gate.get(), spans.get());
          return s;
        },
        ecfg);
  }

  VertexId max_vertex = 1;
  for (const Edge& e : edges) max_vertex = std::max({max_vertex, e.src, e.dst});
  const std::uint64_t target = a.num("queries", 100000);
  const std::size_t readers = std::max<std::uint64_t>(1, a.num("query-threads", 2));
  const std::uint64_t seed = a.num("seed", 7);

  // Readers claim query slots from a shared counter and answer them from
  // pinned views; each owns its (single-writer) latency histogram.
  std::atomic<std::uint64_t> issued{0};
  std::vector<obs::LatencyHistogram> hists(readers);
  std::vector<std::thread> reader_threads;
  const auto now_ns = [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
  for (std::size_t t = 0; t < readers; ++t) {
    reader_threads.emplace_back([&, t] {
      Xoshiro256 rng(seed ^ (0x5bf0'3635'0ce1'0ae5ULL * (t + 1)));
      while (issued.fetch_add(1, std::memory_order_relaxed) < target) {
        const VertexId u = static_cast<VertexId>(rng.bounded(max_vertex + 1));
        const VertexId v = static_cast<VertexId>(rng.bounded(max_vertex + 1));
        const std::uint64_t kind = rng.bounded(100);
        const std::uint64_t t0 = now_ns();
        if (kind < 40)
          (void)qs.distance(bfs_id, u);
        else if (kind < 60)
          (void)qs.component_of(cc_id, u);
        else if (kind < 80)
          (void)qs.connected(cc_id, u, v);
        else if (kind < 90)
          (void)qs.reachable(bfs_id, u);
        else
          (void)qs.top_k_degree(deg_id, 8);
        hists[t].record(now_ns() - t0);
      }
    });
  }

  // Write side: classic pull streams, or conflict-scheduled gate admission.
  IngestStats stats;
  if (use_gate) {
    serve::WriteGateConfig gcfg;
    gcfg.batch_limit = a.num("gate-batch", 1024);
    gcfg.dispatch_threads = std::max<std::uint64_t>(1, a.num("gate-threads", 2));
    gcfg.spans = spans.get();
    gate = std::make_unique<serve::WriteGate>(engine, gcfg);
    StreamOptions opts;
    opts.seed = seed;
    const StreamSet streams = make_streams(edges, 1, opts);
    const auto t0 = std::chrono::steady_clock::now();
    gate->submit_batch(streams.stream(0).events());
    gate->flush();
    engine.drain();
    stats.events = streams.total_events();
    stats.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    stats.events_per_second =
        stats.seconds > 0 ? static_cast<double>(stats.events) / stats.seconds : 0;
    const serve::WriteGateStats gs = gate->stats();
    std::printf(
        "gate: %s batches, %s waves (%s parallel, %s fallback), occupancy "
        "%.1f events/wave, max wave %s\n",
        with_commas(gs.batches).c_str(), with_commas(gs.waves).c_str(),
        with_commas(gs.parallel_waves).c_str(),
        with_commas(gs.serial_fallback_batches).c_str(), gs.mean_wave_occupancy,
        with_commas(gs.max_wave_size).c_str());
  } else {
    StreamOptions opts;
    opts.seed = seed;
    const std::size_t n_streams = a.num("streams", cfg.num_ranks);
    const StreamSet streams = make_streams(edges, n_streams, opts);
    stats = engine.ingest(streams);
  }

  for (auto& th : reader_threads) th.join();
  qs.refresh_all();  // final views reflect the fully-converged state
  const serve::ServeStats ss = qs.stats();
  qs.stop();
  if (exporter) exporter->stop();  // final sample sees the settled plane

  obs::HistogramSnapshot merged;
  for (const auto& h : hists) merged.merge(h.snapshot());
  std::printf("ingested %s events in %.3f s — %s sustained\n",
              with_commas(stats.events).c_str(), stats.seconds,
              remo::strfmt("%.2fM events/s", stats.events_per_second / 1e6).c_str());
  std::printf("queries: %s served by %zu thread(s) — p50 %.1f us, p99 %.1f us\n",
              with_commas(ss.queries_served).c_str(), readers,
              static_cast<double>(merged.p50()) / 1e3,
              static_cast<double>(merged.p99()) / 1e3);
  std::printf("views: %s refreshes, read-epoch lag %s events, oldest view "
              "%.1f ms\n",
              with_commas(ss.refreshes).c_str(),
              with_commas(ss.read_epoch_lag_events).c_str(),
              static_cast<double>(ss.view_age_ns) / 1e6);
  if (spans) {
    const obs::SpanCounts sc = spans->counts();
    std::printf(
        "spans: %s completed of %s sampled (%s open, %s dropped) — "
        "write-to-readable p50 %.2f ms, p99 %.2f ms\n",
        with_commas(sc.completed).c_str(),
        with_commas(sc.batches_sampled).c_str(), with_commas(sc.open).c_str(),
        with_commas(sc.dropped_open).c_str(),
        static_cast<double>(sc.freshness_p50_ns) / 1e6,
        static_cast<double>(sc.freshness_p99_ns) / 1e6);
  }

  if (!spans_out.empty() && spans) {
    std::FILE* f = std::fopen(spans_out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", spans_out.c_str());
      return 1;
    }
    const std::string text = spans->snapshot().to_json().dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("spans written to %s (analyze with `remo trace-analyze "
                "--spans %s --tail`)\n",
                spans_out.c_str(), spans_out.c_str());
  }

  if (const int rc = report_prof(a, engine); rc != 0) return rc;

  if (const std::string stats_json = a.str("stats-json"); !stats_json.empty()) {
    // The engine's remo-stats-1 document, decorated with the serving plane.
    Json doc = engine.metrics_snapshot().to_json();
    Json sj = Json::object();
    sj["queries_served"] = ss.queries_served;
    sj["refreshes"] = ss.refreshes;
    sj["served_programs"] = ss.served_programs;
    sj["read_epoch_lag_events"] = ss.read_epoch_lag_events;
    sj["view_age_ns"] = ss.view_age_ns;
    sj["query_p50_ns"] = merged.p50();
    sj["query_p99_ns"] = merged.p99();
    doc["serve"] = sj;
    if (gate) {
      const serve::WriteGateStats gs = gate->stats();
      Json gj = Json::object();
      gj["events_submitted"] = gs.events_submitted;
      gj["events_dispatched"] = gs.events_dispatched;
      gj["batches"] = gs.batches;
      gj["waves"] = gs.waves;
      gj["parallel_waves"] = gs.parallel_waves;
      gj["serial_fallback_batches"] = gs.serial_fallback_batches;
      gj["mean_wave_occupancy"] = gs.mean_wave_occupancy;
      gj["max_wave_size"] = gs.max_wave_size;
      doc["write_gate"] = gj;
    }
    if (spans) {
      const obs::SpanSnapshot sn = spans->snapshot();
      Json sp = Json::object();
      sp["batches_seen"] = sn.batches_seen;
      sp["batches_sampled"] = sn.batches_sampled;
      sp["completed"] = sn.completed;
      sp["open"] = sn.open;
      sp["dropped_open"] = sn.dropped_open;
      Json fr = Json::object();
      fr["p50_ns"] = sn.freshness.hist.p50();
      fr["p90_ns"] = sn.freshness.hist.p90();
      fr["p99_ns"] = sn.freshness.hist.p99();
      fr["max_ns"] = sn.freshness.hist.max;
      sp["freshness"] = fr;
      Json stages = Json::object();
      for (std::size_t i = 0; i < obs::kWriteStageCount; ++i) {
        const obs::HistogramSnapshot& h = sn.stages[i].hist;
        Json e = Json::object();
        e["p50_ns"] = h.p50();
        e["p99_ns"] = h.p99();
        stages[obs::write_stage_name(static_cast<obs::WriteStage>(i))] = e;
      }
      sp["stages"] = stages;
      doc["spans"] = sp;
    }
    std::FILE* f = std::fopen(stats_json.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", stats_json.c_str());
      return 1;
    }
    const std::string text = doc.dump(2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("stats written to %s\n", stats_json.c_str());
  }

  if (!trace_path.empty()) {
    std::vector<obs::TraceTrack> extra;
    if (spans)
      extra.push_back(spans->trace_track(
          static_cast<std::uint32_t>(cfg.num_ranks) + 1));
    if (engine.write_trace(trace_path, std::move(extra))) {
      std::printf("trace written to %s (load in ui.perfetto.dev or "
                  "chrome://tracing)\n", trace_path.c_str());
    } else if (!engine.tracing_enabled()) {
      std::fprintf(stderr, "trace capture unavailable (compiled out?)\n");
      return 1;
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path.c_str());
      return 1;
    }
  }
  return 0;
}

// Slurp + parse a JSON artefact; returns false (with a printed error) on
// any failure.
bool load_json_file(const std::string& path, Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::string text;
  char buf[1 << 16];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof buf, f)) > 0;)
    text.append(buf, n);
  std::fclose(f);
  std::string error;
  doc = Json::parse(text, &error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  return true;
}

// Write-path span analysis: `--spans FILE --tail` prints the per-stage
// attribution table for tail write-to-readable latency (docs/OBSERVABILITY.md
// has the runbook built around this report).
int analyze_spans(const Args& a, const std::string& path) {
  Json doc;
  if (!load_json_file(path, doc)) return 1;
  std::string error;
  obs::SpanSnapshot snap;
  if (!obs::SpanSnapshot::from_json(doc, snap, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (a.flag("tail")) {
    double pct = 99.0;
    if (a.kv.count("--tail-pct"))
      pct = std::strtod(a.str("tail-pct").c_str(), nullptr);
    if (!(pct > 0.0 && pct < 100.0)) {
      std::fprintf(stderr, "--tail-pct wants a percentile in (0, 100)\n");
      return 1;
    }
    std::fputs(obs::format_tail_report(snap, pct).c_str(), stdout);
  } else {
    const obs::HistogramSnapshot& h = snap.freshness.hist;
    std::printf(
        "spans: %s completed of %s sampled (%s open, %s dropped)\n"
        "write-to-readable: p50 %.2f ms, p90 %.2f ms, p99 %.2f ms, max "
        "%.2f ms\n"
        "(re-run with --tail for per-stage attribution and exemplars)\n",
        with_commas(snap.completed).c_str(),
        with_commas(snap.batches_sampled).c_str(),
        with_commas(snap.open).c_str(), with_commas(snap.dropped_open).c_str(),
        static_cast<double>(h.p50()) / 1e6, static_cast<double>(h.p90()) / 1e6,
        static_cast<double>(h.p99()) / 1e6, static_cast<double>(h.max) / 1e6);
  }

  // CI gate: sampled spans that never completed mean the write path lost
  // track of a batch (or the run ended before its covering publish).
  if (a.flag("require-complete")) {
    if (snap.open > 0 || snap.dropped_open > 0) {
      std::fprintf(stderr,
                   "%llu span(s) still open, %llu dropped — write path lost "
                   "batches\n",
                   static_cast<unsigned long long>(snap.open),
                   static_cast<unsigned long long>(snap.dropped_open));
      return 1;
    }
    std::printf("all %s sampled spans completed\n",
                with_commas(snap.batches_sampled).c_str());
  }
  return 0;
}

// Hardware-counter analysis: re-print a remo-prof-1 dump's per-rank x
// per-phase attribution tables; with --spans, join the phase counters
// against the write path's per-stage percentiles (the "where do the cycles
// go" view in docs/OBSERVABILITY.md).
int analyze_prof(const Args& a, const std::string& path) {
  Json doc;
  if (!load_json_file(path, doc)) return 1;
  std::string error;
  obs::ProfSnapshot snap;
  if (!obs::ProfSnapshot::from_json(doc, snap, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  obs::SpanSnapshot spans;
  bool have_spans = false;
  if (const std::string spans_path = a.str("spans"); !spans_path.empty()) {
    Json sdoc;
    if (!load_json_file(spans_path, sdoc)) return 1;
    if (!obs::SpanSnapshot::from_json(sdoc, spans, &error)) {
      std::fprintf(stderr, "%s: %s\n", spans_path.c_str(), error.c_str());
      return 1;
    }
    have_spans = true;
  }
  std::fputs(
      obs::format_prof_report(snap, have_spans ? &spans : nullptr).c_str(),
      stdout);
  return 0;
}

int cmd_trace_analyze(const Args& a) {
  if (const std::string prof_path = a.str("prof"); !prof_path.empty())
    return analyze_prof(a, prof_path);
  if (const std::string spans_path = a.str("spans"); !spans_path.empty())
    return analyze_spans(a, spans_path);
  const std::string path = a.str("lineage");
  if (path.empty()) return usage();
  Json doc;
  if (!load_json_file(path, doc)) return 1;
  std::string error;
  obs::LineageSnapshot snap;
  if (!obs::LineageSnapshot::from_json(doc, snap, &error)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), error.c_str());
    return 1;
  }

  const std::size_t top_k = a.num("top", 10);
  std::fputs(obs::analyze_lineage(snap, top_k).c_str(), stdout);

  // CI gate: a sampled cause whose cascade spawned fewer visitors than
  // expected means lineage threading went missing somewhere.
  if (const std::uint64_t min_desc = a.num("min-descendants", 0); min_desc > 0) {
    const auto bad = obs::causes_below_descendants(snap, min_desc);
    if (!bad.empty()) {
      std::fprintf(stderr,
                   "%zu sampled cause(s) spawned fewer than %llu visitors:",
                   bad.size(), static_cast<unsigned long long>(min_desc));
      for (std::size_t i = 0; i < bad.size() && i < 16; ++i)
        std::fprintf(stderr, " %u", bad[i]);
      std::fprintf(stderr, "\n");
      return 1;
    }
    std::printf("all %zu sampled causes spawned >= %llu visitor(s)\n",
                snap.records.size(), static_cast<unsigned long long>(min_desc));
  }
  return 0;
}

// --- Bench regression gate (docs/OBSERVABILITY.md "Profiling") -------------

// Parses raw argv: the two report paths are positional, which the Args
// map cannot represent, and --gate repeats.
int cmd_bench_compare(int argc, char** argv) {
  obs::BenchCompareOptions opts;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--force") {
      opts.force = true;
    } else if (arg == "--gate" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const auto eq = spec.find('=');
      double pct = -1;
      if (eq != std::string::npos)
        pct = std::strtod(spec.c_str() + eq + 1, nullptr);
      if (eq == std::string::npos || eq == 0 || !(pct >= 0)) {
        std::fprintf(stderr,
                     "--gate wants METRIC=PCT (e.g. events_per_second=3)\n");
        return 2;
      }
      opts.gates[spec.substr(0, eq)] = pct;
    } else if (arg == "--gate-pct" && i + 1 < argc) {
      const double pct = std::strtod(argv[++i], nullptr);
      if (!(pct >= 0)) {
        std::fprintf(stderr, "--gate-pct wants a non-negative percentage\n");
        return 2;
      }
      opts.default_gate_pct = pct;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bench-compare: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr, "bench-compare wants exactly two BENCH_*.json paths\n");
    return usage();
  }
  Json doc_a, doc_b;
  if (!load_json_file(paths[0], doc_a) || !load_json_file(paths[1], doc_b))
    return 1;
  const obs::BenchCompareResult res = obs::bench_compare(doc_a, doc_b, opts);
  std::fputs(obs::format_bench_compare(res).c_str(), stdout);
  return res.ok() ? 0 : 1;
}

// --- Differential fuzzing (docs/TESTING.md) --------------------------------

void print_divergences(const fuzz::RunResult& rr) {
  const std::size_t show = std::min<std::size_t>(rr.divergences.size(), 16);
  for (std::size_t i = 0; i < show; ++i) {
    const fuzz::Divergence& d = rr.divergences[i];
    std::fprintf(stderr, "  vertex %llu: got %llu, want %llu\n",
                 static_cast<unsigned long long>(d.vertex),
                 static_cast<unsigned long long>(d.got),
                 static_cast<unsigned long long>(d.want));
  }
  if (rr.divergences.size() > show)
    std::fprintf(stderr, "  ... and %zu more\n", rr.divergences.size() - show);
}

// Shrink a failing case's event stream, preserving "some divergence exists"
// (the minimal stream may fail differently than the original — that is
// fine, it is still an engine bug with fewer moving parts).
fuzz::FuzzCase shrink_case(const fuzz::FuzzCase& fc, std::size_t max_runs,
                           fuzz::ShrinkStats* stats) {
  fuzz::FuzzCase out = fc;
  out.events = fuzz::shrink_events(
      fc.events,
      [&fc](const std::vector<EdgeEvent>& candidate) {
        fuzz::FuzzCase probe = fc;
        probe.events = candidate;
        return !fuzz::run_case(probe).ok();
      },
      stats, max_runs);
  return out;
}

int cmd_fuzz(const Args& a) {
  fuzz::CampaignOptions opts;
  opts.num_cases = static_cast<std::uint32_t>(a.num("seeds", 50));
  opts.base_seed = a.num("seed-base", 1);
  opts.gen.num_vertices = static_cast<std::uint32_t>(a.num("vertices", 96));
  opts.gen.num_events = static_cast<std::uint32_t>(a.num("events", 600));
  opts.gen.delete_permille = static_cast<std::uint32_t>(a.num("deletes", 250));
  opts.gen.mutate_permille = static_cast<std::uint32_t>(a.num("mutations", 250));
  opts.gen.max_weight = static_cast<Weight>(a.num("max-weight", 8));
  if (const std::string an = a.str("algo", ""); !an.empty()) {
    fuzz::Algo al;
    if (!fuzz::algo_from_name(an, al)) {
      std::fprintf(stderr, "unknown --algo '%s'\n", an.c_str());
      return 2;
    }
    opts.force_algo = al;
  }
  opts.run.query_observer = a.flag("query-observer");
  const bool keep_going = a.flag("keep-going");
  const bool do_shrink = !a.flag("no-shrink");
  const std::size_t shrink_runs = a.num("shrink-runs", 400);
  const std::string out_dir = a.str("out-dir", "fuzz-out");

  std::uint64_t failed = 0;
  opts.on_case = [&](const fuzz::FuzzCase& fc, const fuzz::RunResult& rr) {
    if (rr.ok()) return true;
    ++failed;
    std::fprintf(stderr, "DIVERGENCE [%s]\n", fuzz::describe(fc).c_str());
    std::fprintf(stderr, "  %zu vertex(es) diverged of %zu checked:\n",
                 rr.divergences.size(), rr.vertices_checked);
    print_divergences(rr);

    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const std::string base =
        out_dir + "/divergence-" + std::to_string(fc.seed);
    std::string err;
    if (!fuzz::write_repro(base + ".repro", fc, &err))
      std::fprintf(stderr, "  %s\n", err.c_str());
    else
      std::fprintf(stderr, "  repro written to %s.repro\n", base.c_str());
    if (do_shrink) {
      fuzz::ShrinkStats st;
      const fuzz::FuzzCase small = shrink_case(fc, shrink_runs, &st);
      if (!fuzz::write_repro(base + ".min.repro", small, &err))
        std::fprintf(stderr, "  %s\n", err.c_str());
      else
        std::fprintf(stderr,
                     "  shrunk %zu -> %zu events (%zu runs%s) -> %s.min.repro\n",
                     st.original_size, st.final_size, st.runs,
                     st.budget_exhausted ? ", budget hit" : "", base.c_str());
    }
    return keep_going;
  };

  const fuzz::CampaignResult res = fuzz::run_campaign(opts);
  std::printf("fuzz: %u case(s) run, %zu divergence(s)\n", res.cases_run,
              res.failures.size());
  return res.failures.empty() ? 0 : 1;
}

int cmd_fuzz_repro(const Args& a) {
  const std::string path = a.str("file");
  if (path.empty()) return usage();
  fuzz::FuzzCase fc;
  std::string err;
  if (!fuzz::read_repro(path, fc, &err)) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  std::printf("replaying [%s]\n", fuzz::describe(fc).c_str());
  fuzz::RunOptions run;
  run.query_observer = a.flag("query-observer");
  const fuzz::RunResult rr = fuzz::run_case(fc, run);
  if (rr.ok()) {
    std::printf("no divergence: %zu vertices checked against the oracle\n",
                rr.vertices_checked);
    return 0;
  }
  std::fprintf(stderr, "DIVERGENCE: %zu vertex(es) of %zu checked\n",
               rr.divergences.size(), rr.vertices_checked);
  print_divergences(rr);
  if (a.flag("shrink")) {
    fuzz::ShrinkStats st;
    const fuzz::FuzzCase small =
        shrink_case(fc, a.num("shrink-runs", 400), &st);
    const std::string out = a.str("out", path + ".min");
    if (!fuzz::write_repro(out, small, &err)) {
      std::fprintf(stderr, "%s\n", err.c_str());
      return 1;
    }
    std::printf("shrunk %zu -> %zu events (%zu runs%s) -> %s\n",
                st.original_size, st.final_size, st.runs,
                st.budget_exhausted ? ", budget hit" : "", out.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse(argc, argv);
  if (a.command == "generate") return cmd_generate(a);
  if (a.command == "stats") return cmd_stats(a);
  if (a.command == "ingest") return cmd_ingest(a);
  if (a.command == "prof") {  // ingest with profiling forced on
    a.kv["--prof"] = "1";
    return cmd_ingest(a);
  }
  if (a.command == "serve") return cmd_serve(a);
  if (a.command == "trace-analyze") return cmd_trace_analyze(a);
  if (a.command == "bench-compare") return cmd_bench_compare(argc, argv);
  if (a.command == "fuzz") return cmd_fuzz(a);
  if (a.command == "fuzz-repro") return cmd_fuzz_repro(a);
  return usage();
}
